"""LM datasets and the data-parallel sampler.

:class:`TokenDataset` windows a token stream into fixed-length
(input, target) pairs.  :class:`DataParallelSampler` reproduces Megatron's
sharding semantics:

- the sample order is a deterministic per-epoch shuffle (seed + epoch);
- DP replica ``r`` of ``d`` draws the samples at positions
  ``r, r + d, r + 2d, ...`` of the shuffled order, so replicas see
  disjoint data and every sample is consumed exactly once per epoch;
- ranks *within* a replica (TP/PP peers) ask with the same replica index
  and therefore receive identical batches — the invariant that makes
  tensor/pipeline parallelism correct.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class TokenDataset:
    """Fixed-length LM samples over one token stream."""

    def __init__(self, tokens: Sequence[int], seq_length: int) -> None:
        self.tokens = np.asarray(tokens, dtype=np.int64)
        if self.tokens.ndim != 1:
            raise ConfigurationError("token stream must be one-dimensional")
        if seq_length < 1:
            raise ConfigurationError(f"seq_length must be >= 1: {seq_length}")
        self.seq_length = seq_length
        # Non-overlapping windows of seq_length+1 (input + shifted target).
        self.num_samples = (len(self.tokens) - 1) // seq_length
        if self.num_samples < 1:
            raise ConfigurationError(
                f"stream of {len(self.tokens)} tokens too short for "
                f"sequence length {seq_length}"
            )

    def __len__(self) -> int:
        return self.num_samples

    def sample(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(input, target) pair for one sample index."""
        if not 0 <= index < self.num_samples:
            raise ConfigurationError(
                f"sample {index} out of range [0, {self.num_samples})"
            )
        start = index * self.seq_length
        window = self.tokens[start : start + self.seq_length + 1]
        return window[:-1].copy(), window[1:].copy()

    def batch(self, indices: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked (inputs, targets) for a list of sample indices."""
        pairs = [self.sample(i) for i in indices]
        return (
            np.stack([p[0] for p in pairs]),
            np.stack([p[1] for p in pairs]),
        )


class DataParallelSampler:
    """Deterministic epoch-shuffled sharding across DP replicas."""

    def __init__(self, dataset: TokenDataset, data_parallel: int,
                 batch_per_replica: int, seed: int = 0) -> None:
        if data_parallel < 1:
            raise ConfigurationError(f"data_parallel must be >= 1")
        if batch_per_replica < 1:
            raise ConfigurationError("batch_per_replica must be >= 1")
        if len(dataset) < data_parallel * batch_per_replica:
            raise ConfigurationError(
                f"dataset of {len(dataset)} samples cannot feed "
                f"{data_parallel} replicas x {batch_per_replica} samples"
            )
        self.dataset = dataset
        self.data_parallel = data_parallel
        self.batch_per_replica = batch_per_replica
        self.seed = seed

    @property
    def batches_per_epoch(self) -> int:
        return len(self.dataset) // (self.data_parallel * self.batch_per_replica)

    def _epoch_order(self, epoch: int) -> np.ndarray:
        rng = np.random.default_rng((self.seed, epoch))
        return rng.permutation(len(self.dataset))

    def replica_indices(self, replica: int, epoch: int, step: int) -> List[int]:
        """Sample indices for one replica's batch at (epoch, step)."""
        if not 0 <= replica < self.data_parallel:
            raise ConfigurationError(
                f"replica {replica} out of range [0, {self.data_parallel})"
            )
        if not 0 <= step < self.batches_per_epoch:
            raise ConfigurationError(
                f"step {step} out of range [0, {self.batches_per_epoch})"
            )
        order = self._epoch_order(epoch)
        d, b = self.data_parallel, self.batch_per_replica
        base = step * d * b
        # Replica r takes the r-th interleaved slice of this step's block.
        block = order[base : base + d * b]
        return [int(i) for i in block[replica::d]]

    def replica_batch(self, replica: int, epoch: int, step: int):
        """(inputs, targets) arrays for one replica's batch."""
        return self.dataset.batch(self.replica_indices(replica, epoch, step))

    def epoch_coverage(self, epoch: int) -> List[int]:
        """All indices consumed in one epoch (testing aid: each exactly once
        across replicas and steps)."""
        out: List[int] = []
        for step in range(self.batches_per_epoch):
            for replica in range(self.data_parallel):
                out.extend(self.replica_indices(replica, epoch, step))
        return out
