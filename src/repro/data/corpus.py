"""A deterministic synthetic text corpus.

The paper trains on large text corpora we do not have; per the
substitution rule we generate a synthetic "language" with enough structure
to be learnable and tokenizable: a fixed vocabulary of pseudo-words
composed from syllables, emitted by a first-order Markov chain so that
both word frequencies and word-to-word transitions are non-uniform (which
is what gives BPE merges and language models something to exploit).
Everything is a pure function of the seed.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import ConfigurationError

_SYLLABLES = [
    "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
    "ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
    "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
    "ta", "te", "ti", "to", "tu", "za", "ze", "zi", "zo", "zu",
]


class SyntheticCorpus:
    """Generates deterministic pseudo-text.

    ``vocab_words`` pseudo-words of 1-3 syllables are built from the seed;
    a Markov transition matrix (sparse, peaked) governs word order; Zipfian
    initial probabilities govern word frequencies.
    """

    def __init__(self, vocab_words: int = 50, seed: int = 0,
                 branching: int = 4) -> None:
        if vocab_words < 2:
            raise ConfigurationError(f"need >= 2 words, got {vocab_words}")
        if branching < 1:
            raise ConfigurationError(f"branching must be >= 1: {branching}")
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.words: List[str] = []
        seen = set()
        while len(self.words) < vocab_words:
            n = int(rng.integers(1, 4))
            word = "".join(rng.choice(_SYLLABLES) for _ in range(n))
            if word not in seen:
                seen.add(word)
                self.words.append(word)

        # Zipfian unigram distribution.
        ranks = np.arange(1, vocab_words + 1, dtype=float)
        self._unigram = (1.0 / ranks) / (1.0 / ranks).sum()

        # Sparse Markov transitions: each word leads to `branching`
        # preferred successors.
        self._successors = np.empty((vocab_words, branching), dtype=int)
        for w in range(vocab_words):
            self._successors[w] = rng.choice(
                vocab_words, size=branching, replace=False
            )

    def generate(self, num_words: int, seed: int = 0) -> str:
        """``num_words`` of space-separated pseudo-text."""
        if num_words < 1:
            raise ConfigurationError(f"num_words must be >= 1: {num_words}")
        rng = np.random.default_rng((self.seed, seed))
        out: List[int] = [int(rng.choice(len(self.words), p=self._unigram))]
        for _ in range(num_words - 1):
            if rng.random() < 0.85:
                out.append(int(rng.choice(self._successors[out[-1]])))
            else:  # occasional unigram resets keep the chain ergodic
                out.append(int(rng.choice(len(self.words), p=self._unigram)))
        return " ".join(self.words[i] for i in out)
