"""Data pipeline substrate: corpus, tokenizer, dataset, DP-aware sampling.

The paper trains GPT on text corpora through Megatron's data pipeline; this
subpackage is the reproduction's equivalent, sized for the NumPy training
substrate (:mod:`repro.nn`):

- :mod:`repro.data.corpus` — a deterministic synthetic "language"
  (Markov-chain word generator) standing in for the paper's proprietary
  corpus;
- :mod:`repro.data.tokenizer` — a trainable byte-pair-encoding tokenizer;
- :mod:`repro.data.dataset` — fixed-length LM samples over a token stream,
  plus the data-parallel sampler that hands each DP replica a disjoint,
  epoch-shuffled shard (ranks of the same replica see identical data, the
  Megatron invariant).
"""

from repro.data.corpus import SyntheticCorpus
from repro.data.tokenizer import BPETokenizer, CharTokenizer
from repro.data.dataset import DataParallelSampler, TokenDataset

__all__ = [
    "SyntheticCorpus",
    "BPETokenizer",
    "CharTokenizer",
    "TokenDataset",
    "DataParallelSampler",
]
