"""Tokenizers: character-level and trainable byte-pair encoding.

The BPE trainer follows the classic Sennrich et al. algorithm: start from
characters, repeatedly merge the most frequent adjacent pair, record the
merge table.  Encoding replays the merges in order; decoding concatenates
token strings.  Round-trip fidelity is a tested invariant.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


class CharTokenizer:
    """Character-level tokenizer built from a sample text."""

    def __init__(self, text: str) -> None:
        if not text:
            raise ConfigurationError("cannot build a vocabulary from empty text")
        alphabet = sorted(set(text))
        self._id_of: Dict[str, int] = {ch: i for i, ch in enumerate(alphabet)}
        self._char_of: List[str] = alphabet

    @property
    def vocab_size(self) -> int:
        return len(self._char_of)

    def encode(self, text: str) -> List[int]:
        try:
            return [self._id_of[ch] for ch in text]
        except KeyError as exc:
            raise ConfigurationError(
                f"character {exc.args[0]!r} not in vocabulary"
            ) from None

    def decode(self, ids: Sequence[int]) -> str:
        return "".join(self._char_of[i] for i in ids)


class BPETokenizer:
    """Trainable byte-pair-encoding tokenizer."""

    END_OF_WORD = "▁"  # marks word boundaries (SentencePiece-style)

    def __init__(self) -> None:
        self._merges: List[Tuple[str, str]] = []
        self._vocab: Dict[str, int] = {}
        self._tokens: List[str] = []

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #

    def train(self, text: str, vocab_size: int) -> "BPETokenizer":
        """Learn merges until the vocabulary reaches ``vocab_size`` (or no
        pair repeats).  Returns self for chaining."""
        if not text:
            raise ConfigurationError("cannot train on empty text")
        if vocab_size < 2:
            raise ConfigurationError(f"vocab_size must be >= 2: {vocab_size}")

        # Word frequency table; words are symbol tuples ending in the
        # boundary marker.
        word_freq: Counter = Counter()
        for word in text.split():
            word_freq[tuple(word) + (self.END_OF_WORD,)] += 1

        symbols = {s for word in word_freq for s in word}
        self._tokens = sorted(symbols)
        self._merges = []
        while len(self._tokens) < vocab_size:
            pair_freq: Counter = Counter()
            for word, freq in word_freq.items():
                for a, b in zip(word, word[1:]):
                    pair_freq[(a, b)] += freq
            if not pair_freq:
                break
            (a, b), count = max(
                pair_freq.items(), key=lambda kv: (kv[1], kv[0])
            )
            if count < 2:
                break
            merged = a + b
            self._merges.append((a, b))
            self._tokens.append(merged)
            word_freq = Counter(
                {self._apply_merge(word, a, b): f for word, f in word_freq.items()}
            )
        self._vocab = {tok: i for i, tok in enumerate(self._tokens)}
        return self

    @staticmethod
    def _apply_merge(word: tuple, a: str, b: str) -> tuple:
        out: List[str] = []
        i = 0
        while i < len(word):
            if i + 1 < len(word) and word[i] == a and word[i + 1] == b:
                out.append(a + b)
                i += 2
            else:
                out.append(word[i])
                i += 1
        return tuple(out)

    # ------------------------------------------------------------------ #
    # encode / decode
    # ------------------------------------------------------------------ #

    @property
    def vocab_size(self) -> int:
        return len(self._tokens)

    def tokenize(self, text: str) -> List[str]:
        """Text -> token strings (replays the learned merges in order)."""
        if not self._tokens:
            raise ConfigurationError("tokenizer is not trained")
        pieces: List[str] = []
        for word in text.split():
            symbols = tuple(word) + (self.END_OF_WORD,)
            for a, b in self._merges:
                symbols = self._apply_merge(symbols, a, b)
            pieces.extend(symbols)
        return pieces

    def encode(self, text: str) -> List[int]:
        ids = []
        for piece in self.tokenize(text):
            if piece not in self._vocab:
                raise ConfigurationError(
                    f"piece {piece!r} outside the trained vocabulary"
                )
            ids.append(self._vocab[piece])
        return ids

    def decode(self, ids: Sequence[int]) -> str:
        text = "".join(self._tokens[i] for i in ids)
        return text.replace(self.END_OF_WORD, " ").strip()
