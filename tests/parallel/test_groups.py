"""Tests for the group matrices (paper Eqs. 1/3/4), including the paper's
own worked example and property-based partition invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParallelismError
from repro.parallel.degrees import ParallelConfig
from repro.parallel.groups import ParallelLayout


def layout(t, p, d):
    batch = d  # minimal valid batch
    return ParallelLayout(
        ParallelConfig(tensor=t, pipeline=p, data=d,
                       micro_batch_size=1, global_batch_size=batch)
    )


class TestPaperFormulas:
    def test_figure2_example(self):
        """The paper's Figure 2: t=2, p=4, d=2 over 16 GPUs."""
        lay = layout(t=2, p=4, d=2)
        # Eq. 1: tensor groups are consecutive pairs.
        assert lay.tp_groups[0] == [0, 1]
        assert lay.tp_groups[7] == [14, 15]
        # Eq. 3: pipeline groups stride by t*d = 4.
        assert lay.pp_groups[0] == [0, 4, 8, 12]
        assert lay.pp_groups[3] == [3, 7, 11, 15]
        # Eq. 4: data groups stride by t within a stage.
        assert lay.dp_groups[0] == [0, 2]
        assert lay.dp_groups[1] == [1, 3]

    def test_simple_t1(self):
        lay = layout(t=1, p=2, d=2)
        assert lay.pp_groups == [[0, 2], [1, 3]]
        assert lay.dp_groups == [[0, 1], [2, 3]]
        assert lay.tp_groups == [[0], [1], [2], [3]]

    def test_group_matrix_shapes(self):
        t, p, d = 2, 3, 4
        lay = layout(t, p, d)
        assert len(lay.tp_groups) == p * d and all(len(g) == t for g in lay.tp_groups)
        assert len(lay.pp_groups) == t * d and all(len(g) == p for g in lay.pp_groups)
        assert len(lay.dp_groups) == p * t and all(len(g) == d for g in lay.dp_groups)


class TestQueries:
    def test_stage_of(self):
        lay = layout(t=2, p=2, d=2)
        assert [lay.stage_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_stage_ranks_contiguous(self):
        lay = layout(t=2, p=2, d=2)
        assert lay.stage_ranks(0) == [0, 1, 2, 3]
        assert lay.stage_ranks(1) == [4, 5, 6, 7]
        with pytest.raises(ParallelismError):
            lay.stage_ranks(2)

    def test_pipeline_neighbours(self):
        lay = layout(t=1, p=3, d=1)
        assert lay.next_stage_peer(0) == 1
        assert lay.prev_stage_peer(2) == 1
        with pytest.raises(ParallelismError):
            lay.prev_stage_peer(0)
        with pytest.raises(ParallelismError):
            lay.next_stage_peer(2)

    def test_group_of_rank_consistency(self):
        lay = layout(t=2, p=2, d=4)
        for rank in range(lay.config.world_size):
            assert rank in lay.tp_group_of(rank)
            assert rank in lay.pp_group_of(rank)
            assert rank in lay.dp_group_of(rank)

    def test_all_groups_dict(self):
        lay = layout(t=1, p=2, d=2)
        groups = lay.all_groups()
        assert set(groups) == {"tensor", "pipeline", "data"}


@st.composite
def degree_triples(draw):
    t = draw(st.sampled_from([1, 2, 4, 8]))
    p = draw(st.integers(1, 6))
    d = draw(st.integers(1, 8))
    return t, p, d


class TestPartitionInvariants:
    @given(degree_triples())
    @settings(max_examples=60, deadline=None)
    def test_property_each_family_partitions_ranks(self, tpd):
        t, p, d = tpd
        lay = layout(t, p, d)
        N = t * p * d
        for groups in (lay.tp_groups, lay.pp_groups, lay.dp_groups):
            flat = sorted(r for g in groups for r in g)
            assert flat == list(range(N))

    @given(degree_triples())
    @settings(max_examples=60, deadline=None)
    def test_property_dp_groups_stay_within_stage(self, tpd):
        t, p, d = tpd
        lay = layout(t, p, d)
        for group in lay.dp_groups:
            stages = {lay.stage_of(r) for r in group}
            assert len(stages) == 1

    @given(degree_triples())
    @settings(max_examples=60, deadline=None)
    def test_property_pp_group_hits_every_stage_once(self, tpd):
        t, p, d = tpd
        lay = layout(t, p, d)
        for group in lay.pp_groups:
            assert [lay.stage_of(r) for r in group] == list(range(p))

    @given(degree_triples())
    @settings(max_examples=60, deadline=None)
    def test_property_tp_groups_consecutive(self, tpd):
        t, p, d = tpd
        lay = layout(t, p, d)
        for group in lay.tp_groups:
            assert group == list(range(group[0], group[0] + t))

    @given(degree_triples())
    @settings(max_examples=40, deadline=None)
    def test_property_tp_dp_intersection_is_singleton(self, tpd):
        """Any tensor group and any data group of the same stage intersect
        in at most one rank (grid structure)."""
        t, p, d = tpd
        lay = layout(t, p, d)
        for tp in lay.tp_groups[: min(4, len(lay.tp_groups))]:
            for dp in lay.dp_groups[: min(4, len(lay.dp_groups))]:
                assert len(set(tp) & set(dp)) <= 1
