"""Tests for parallelism degree validation."""

import pytest

from repro.errors import ParallelismError
from repro.parallel.degrees import ParallelConfig


class TestParallelConfig:
    def test_world_size(self):
        config = ParallelConfig(tensor=2, pipeline=3, data=4,
                                micro_batch_size=1, global_batch_size=8)
        assert config.world_size == 24

    def test_num_microbatches_pg1(self):
        """Parameter group 1 on 32 GPUs: d=16, batch 768, micro 4 -> m=12."""
        config = ParallelConfig(tensor=1, pipeline=2, data=16,
                                micro_batch_size=4, global_batch_size=768)
        assert config.num_microbatches == 12

    def test_batch_not_divisible_by_data_rejected(self):
        with pytest.raises(ParallelismError, match="not divisible"):
            ParallelConfig(tensor=1, pipeline=1, data=3,
                           micro_batch_size=1, global_batch_size=8)

    def test_replica_batch_not_divisible_by_micro_rejected(self):
        with pytest.raises(ParallelismError, match="not divisible"):
            ParallelConfig(tensor=1, pipeline=1, data=2,
                           micro_batch_size=3, global_batch_size=8)

    @pytest.mark.parametrize("field", ["tensor", "pipeline", "data",
                                       "micro_batch_size", "global_batch_size"])
    def test_non_positive_degrees_rejected(self, field):
        kwargs = dict(tensor=1, pipeline=1, data=1,
                      micro_batch_size=1, global_batch_size=1)
        kwargs[field] = 0
        with pytest.raises(ParallelismError):
            ParallelConfig(**kwargs)

    def test_validate_against_machine(self):
        config = ParallelConfig(tensor=8, pipeline=2, data=2,
                                micro_batch_size=1, global_batch_size=4)
        config.validate_against(world_size=32, gpus_per_node=8)  # fits

    def test_validate_wrong_world_size(self):
        config = ParallelConfig(tensor=1, pipeline=2, data=2,
                                micro_batch_size=1, global_batch_size=2)
        with pytest.raises(ParallelismError, match="machine has"):
            config.validate_against(world_size=32, gpus_per_node=8)

    def test_tensor_exceeding_node_rejected(self):
        config = ParallelConfig(tensor=16, pipeline=1, data=2,
                                micro_batch_size=1, global_batch_size=2)
        with pytest.raises(ParallelismError, match="within a node"):
            config.validate_against(world_size=32, gpus_per_node=8)

    def test_tensor_straddling_node_rejected(self):
        config = ParallelConfig(tensor=3, pipeline=1, data=8,
                                micro_batch_size=1, global_batch_size=8)
        with pytest.raises(ParallelismError, match="straddle"):
            config.validate_against(world_size=24, gpus_per_node=8)

    def test_str_mentions_degrees(self):
        config = ParallelConfig(tensor=1, pipeline=2, data=4,
                                micro_batch_size=2, global_batch_size=16)
        text = str(config)
        assert "t=1" in text and "p=2" in text and "d=4" in text
