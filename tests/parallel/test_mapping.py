"""Tests for placements (logical -> physical rank bijections)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError
from repro.parallel.mapping import Placement, identity_placement


class TestPlacement:
    def test_identity(self):
        p = identity_placement(4)
        assert [p.physical(i) for i in range(4)] == [0, 1, 2, 3]
        assert [p.logical(i) for i in range(4)] == [0, 1, 2, 3]

    def test_permutation_round_trip(self):
        p = Placement([2, 0, 3, 1])
        assert p.physical(0) == 2
        assert p.logical(2) == 0
        for logical in range(4):
            assert p.logical(p.physical(logical)) == logical

    def test_non_permutation_rejected(self):
        with pytest.raises(SchedulingError):
            Placement([0, 0, 1])
        with pytest.raises(SchedulingError):
            Placement([0, 2])

    def test_map_group_preserves_order(self):
        p = Placement([3, 2, 1, 0])
        assert p.map_group([0, 2]) == [3, 1]

    def test_map_groups(self):
        p = Placement([1, 0])
        assert p.map_groups([[0], [1], [0, 1]]) == [[1], [0], [1, 0]]

    def test_map_all_families(self):
        p = Placement([1, 0, 3, 2])
        families = {"data": [[0, 1]], "pipeline": [[0, 2]]}
        mapped = p.map_all(families)
        assert mapped == {"data": [[1, 0]], "pipeline": [[1, 3]]}

    def test_len(self):
        assert len(identity_placement(7)) == 7

    @given(st.permutations(list(range(12))))
    def test_property_bijection(self, perm):
        p = Placement(perm)
        physical = [p.physical(i) for i in range(12)]
        assert sorted(physical) == list(range(12))
        for phys in range(12):
            assert p.physical(p.logical(phys)) == phys
