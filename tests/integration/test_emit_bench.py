"""The CI benchmark emitter: BENCH JSON shape and the drift gate."""

import json

import pytest

from benchmarks.emit_bench import BENCH_SCHEMA, check_drift, main, run_bench
from repro.obs.report import validate_report


@pytest.fixture(scope="module")
def bench(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("bench")
    assert main(["--nodes", "2", "--out-dir", str(out_dir)]) == 0
    files = list(out_dir.glob("BENCH_*.json"))
    assert len(files) == 1
    return json.loads(files[0].read_text())


class TestBenchDocument:
    def test_schema_and_scenarios(self, bench):
        assert bench["schema"] == BENCH_SCHEMA
        assert set(bench["cases"]) == {"ib", "roce", "ethernet"}

    def test_each_case_embeds_a_valid_profile_report(self, bench):
        for name, case in bench["cases"].items():
            assert case["tflops_per_gpu"] > 0, name
            assert case["iteration_seconds"] > 0, name
            validate_report(case["report"])

    def test_serve_overhead_point(self, bench):
        serve = bench["serve"]
        assert serve["repeats"] >= 3
        assert serve["served_ms"] > 0
        assert serve["inproc_ms"] >= 0
        assert serve["overhead_ms"] == pytest.approx(
            serve["served_ms"] - serve["inproc_ms"])

class TestDriftGate:
    def test_self_comparison_passes(self, bench, capsys):
        assert check_drift(bench, bench, tolerance=0.02) == 0

    def test_drift_beyond_tolerance_fails(self, bench, capsys):
        reference = json.loads(json.dumps(bench))
        reference["cases"]["ib"]["tflops_per_gpu"] *= 1.10
        assert check_drift(bench, reference, tolerance=0.02) == 1
        assert "drift" in capsys.readouterr().err

    def test_missing_scenario_in_reference_fails(self, bench, capsys):
        reference = {"cases": {}}
        assert check_drift(bench, reference, tolerance=0.02) == 1

    def test_serve_overhead_above_ceiling_fails(self, bench, capsys):
        reference = json.loads(json.dumps(bench))
        reference["serve"] = {"max_overhead_ms": -1.0}
        assert check_drift(bench, reference, tolerance=0.02) == 1
        assert "serve" in capsys.readouterr().err

    def test_committed_reference_matches_current_model(self):
        """The committed 4-node reference must match a fresh run — the
        same gate CI applies on every push."""
        bench = run_bench(nodes=4, group_id=1)
        with open("benchmarks/bench_reference.json") as fh:
            reference = json.load(fh)
        assert check_drift(bench, reference, tolerance=0.02) == 0
        # at the calibrated Table 1 point the NIC families rank as in the
        # paper: InfiniBand > RoCE > Ethernet
        cases = bench["cases"]
        assert (
            cases["ib"]["tflops_per_gpu"]
            > cases["roce"]["tflops_per_gpu"]
            > cases["ethernet"]["tflops_per_gpu"]
        )
