"""Calibration quality gate: the shipped constants must reproduce the
paper's Table 1 / Table 3 within tolerance, with the documented residual
structure."""

import pytest

from repro.bench.calibration import (
    ACCEPTABLE_MEAN_ERROR,
    evaluate_against_table3,
    verify_calibration,
)


@pytest.fixture(scope="module")
def report():
    # Evaluate once for all tests in this module (48 simulated cells).
    return evaluate_against_table3()


class TestCalibrationQuality:
    def test_mean_error_within_bar(self, report):
        assert report.mean_relative_error <= ACCEPTABLE_MEAN_ERROR

    def test_table1_anchor_row_tight(self):
        """The headline anchors (PG1, 4 nodes) must be within 5%."""
        sub = evaluate_against_table3(
            keys=[(1, 4, "InfiniBand"), (1, 4, "RoCE"), (1, 4, "Ethernet")]
        )
        assert sub.max_relative_error < 0.05

    def test_verify_calibration_passes(self):
        report = verify_calibration()
        assert report.mean_relative_error <= ACCEPTABLE_MEAN_ERROR

    def test_worst_cells_reported(self, report):
        worst = report.worst(3)
        assert len(worst) == 3
        assert worst[0].relative_error >= worst[1].relative_error

    def test_every_cell_within_loose_bound(self, report):
        """No single cell drifts past 30% — catches gross regressions in
        any one environment/scale combination."""
        assert report.max_relative_error < 0.30
