"""End-to-end integration tests at the paper's real scales.

These run the full pipeline (scheduler -> engine -> metrics) on the actual
testbed shapes (8-GPU nodes, 32-96 GPUs) and check the paper's qualitative
claims hold — the *shape* requirements of the reproduction.
"""

import pytest

from repro import quick_simulate
from repro.bench.paper_data import shapes_hold
from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import run_holmes_case
from repro.bench.scenarios import (
    ethernet_env,
    homogeneous_env,
    hybrid2_env,
    hybrid3_env,
    split_env,
)
from repro.hardware.nic import NICType


def sweep(group_id, nodes):
    group = PARAM_GROUPS[group_id]
    return {
        "InfiniBand": run_holmes_case(
            homogeneous_env(nodes, NICType.INFINIBAND), group
        ).tflops,
        "RoCE": run_holmes_case(
            homogeneous_env(nodes, NICType.ROCE), group
        ).tflops,
        "Ethernet": run_holmes_case(ethernet_env(nodes), group).tflops,
        "Hybrid": run_holmes_case(hybrid2_env(nodes), group).tflops,
    }


class TestPaperShapes:
    """Abstract claim: 'performance levels close to those achievable with
    homogeneous RDMA-capable networks, significantly exceeding training
    efficiency within the pure Ethernet environment.'"""

    @pytest.mark.parametrize("group_id,nodes", [(1, 4), (2, 4), (3, 4), (3, 8)])
    def test_environment_ordering(self, group_id, nodes):
        measured = sweep(group_id, nodes)
        claims = shapes_hold(measured)
        assert claims["ib_fastest"], measured
        assert claims["rdma_beats_ethernet"], measured
        assert claims["hybrid_between"], measured
        assert claims["hybrid_close_to_rdma"], measured
        assert claims["hybrid_beats_ethernet_clearly"], measured

    def test_tflops_declines_with_scale_at_fixed_batch(self):
        """Table 3's scaling shape: fixed global batch, more GPUs -> lower
        per-GPU TFLOPS (communication share grows, microbatches shrink)."""
        group = PARAM_GROUPS[1]
        t4 = run_holmes_case(homogeneous_env(4, NICType.INFINIBAND), group).tflops
        t6 = run_holmes_case(homogeneous_env(6, NICType.INFINIBAND), group).tflops
        t8 = run_holmes_case(homogeneous_env(8, NICType.INFINIBAND), group).tflops
        assert t4 > t6 > t8

    def test_throughput_grows_with_scale(self):
        group = PARAM_GROUPS[1]
        t4 = run_holmes_case(homogeneous_env(4, NICType.INFINIBAND), group).throughput
        t8 = run_holmes_case(homogeneous_env(8, NICType.INFINIBAND), group).throughput
        assert t8 > t4


class TestCase2CrossCluster:
    """Figure 4: training across clusters without high-speed interconnects."""

    @pytest.mark.parametrize("family", [NICType.INFINIBAND, NICType.ROCE])
    def test_split_env_between_bounds(self, family):
        group = PARAM_GROUPS[1]
        upper = run_holmes_case(homogeneous_env(4, family), group).tflops
        lower = run_holmes_case(ethernet_env(4), group).tflops
        split = run_holmes_case(split_env(4, family), group).tflops
        assert lower < split <= upper * 1.02

    def test_split_env_dp_keeps_rdma(self):
        group = PARAM_GROUPS[1]
        result = run_holmes_case(split_env(4, NICType.INFINIBAND), group)
        assert result.dp_rdma_fraction == 1.0


class TestThreeClusters:
    """Table 4: three clusters, pipeline degree 3."""

    @pytest.mark.parametrize(
        "families",
        [
            [NICType.ROCE, NICType.ROCE, NICType.INFINIBAND],
            [NICType.ROCE, NICType.INFINIBAND, NICType.INFINIBAND],
        ],
    )
    def test_hybrid3_beats_ethernet(self, families):
        group = PARAM_GROUPS[5]  # p=3
        topo = hybrid3_env(families, 2)
        hybrid = run_holmes_case(topo, group)
        eth = run_holmes_case(ethernet_env(6), group)
        assert hybrid.tflops > eth.tflops
        assert hybrid.dp_rdma_fraction == 1.0

    def test_hybrid3_at_12_nodes(self):
        group = PARAM_GROUPS[6]
        topo = hybrid3_env(
            [NICType.ROCE, NICType.INFINIBAND, NICType.INFINIBAND], 4
        )
        result = run_holmes_case(topo, group)
        assert result.num_gpus == 96
        assert result.tflops > 0


class TestQuickSimulate:
    def test_public_api_entry_point(self):
        result = quick_simulate(hybrid2_env(4), PARAM_GROUPS[1])
        assert result.tflops > 0

    def test_full_configuration_faster_in_hybrid(self):
        base = quick_simulate(hybrid2_env(8), PARAM_GROUPS[3], full=False)
        full = quick_simulate(hybrid2_env(8), PARAM_GROUPS[3], full=True)
        assert full.iteration_time < base.iteration_time
