"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_environment, main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_unknown_env_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["simulate", "--env", "carrier-pigeon"])

    def test_environments_buildable(self):
        for env in ("ib", "roce", "ethernet", "hybrid", "split-ib", "split-roce"):
            topo = build_environment(env, 4)
            assert topo.world_size == 32


class TestCommands:
    def test_topology(self, capsys):
        assert main(["topology", "--nodes", "4", "--env", "hybrid"]) == 0
        out = capsys.readouterr().out
        assert "2 cluster(s)" in out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--nodes", "2", "--env", "ib", "--group", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "TFLOPS/GPU" in out
        assert "DP on RDMA" in out

    def test_simulate_base_flag(self, capsys):
        assert main(
            ["simulate", "--nodes", "2", "--env", "hybrid", "--group", "1",
             "--base"]
        ) == 0

    def test_compare(self, capsys):
        assert main(
            ["compare", "--nodes", "2", "--env", "hybrid", "--group", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "holmes" in out and "megatron-lm" in out

    def test_plan(self, capsys):
        assert main(
            ["plan", "--nodes", "2", "--env", "ib", "--layers", "8",
             "--hidden", "1024", "--heads", "8", "--batch", "64",
             "--micro-batch", "2", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "TFLOPS" in out

    def test_trace_export(self, tmp_path, capsys):
        output = tmp_path / "trace.json"
        assert main(
            ["trace", "--nodes", "2", "--env", "ib", "--group", "1",
             "-o", str(output)]
        ) == 0
        payload = json.loads(output.read_text())
        assert payload["traceEvents"]
        kinds = {e.get("cat") for e in payload["traceEvents"]}
        assert "compute" in kinds


class TestProfileCommand:
    def test_healthy_report_written_and_valid(self, tmp_path, capsys):
        from repro.obs.report import validate_report

        out_path = tmp_path / "report.json"
        assert main([
            "profile", "--nodes", "2", "--env", "hybrid", "--group", "1",
            "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        validate_report(report)
        assert report["scenario"]["env"] == "hybrid"
        assert report["scenario"]["faulted"] is False
        text = capsys.readouterr().out
        assert "time-loss budget" in text
        assert "NIC transmit utilization" in text

    def test_faulted_report_valid_and_straggler_dominates(self, tmp_path):
        from repro.obs.report import validate_report

        out_path = tmp_path / "report.json"
        assert main([
            "profile", "--nodes", "2", "--env", "hybrid", "--group", "1",
            "--event", "straggler:rank=0,factor=3",
            "--out", str(out_path),
        ]) == 0
        report = json.loads(out_path.read_text())
        validate_report(report)
        budget = report["attribution"]["budget"]
        assert budget["straggler"] == max(budget.values())
        assert report["faults"]["degraded"] is True

    def test_trace_export_with_counters_and_flows(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        assert main([
            "profile", "--nodes", "2", "--env", "hybrid", "--group", "1",
            "--trace", str(trace_path),
        ]) == 0
        payload = json.loads(trace_path.read_text())
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "C", "s", "f", "M"} <= phases

    def test_bad_fault_event_rejected(self):
        with pytest.raises(SystemExit):
            main(["profile", "--nodes", "2", "--env", "hybrid",
                  "--event", "gremlins:rank=0"])


class TestCheckCommand:
    def test_check_passes_on_feasible_config(self, capsys):
        from repro.cli import main

        assert main(["check", "--nodes", "4", "--env", "hybrid",
                     "--group", "7"]) == 0
        out = capsys.readouterr().out
        assert "preflight: PASS" in out
        assert "OK" in out
        assert "DEGRADED" not in out  # Holmes keeps DP groups clean

    def test_check_reports_memory_breakdown(self, capsys):
        from repro.cli import main

        main(["check", "--nodes", "2", "--env", "ib", "--group", "1"])
        out = capsys.readouterr().out
        assert "weights+grads" in out
        assert "activations" in out


class TestReproduceCommand:
    def test_reproduce_single_experiment(self):
        from repro.cli import main

        assert main(["reproduce", "--only", "table2_param_groups"]) == 0


class TestFaultsCommand:
    def test_explicit_event(self, capsys):
        assert main([
            "faults", "--nodes", "4", "--env", "hybrid", "--group", "1",
            "--event", "nic-flap:node=0,time=0.005,duration=30",
        ]) == 0
        out = capsys.readouterr().out
        assert "healthy:" in out
        assert "faulted:" in out
        assert "slowdown:" in out
        assert "nic-flap on node 0" in out

    def test_random_plan(self, capsys):
        assert main([
            "faults", "--nodes", "2", "--env", "hybrid", "--group", "1",
            "--random", "3", "--seed", "9",
        ]) == 0
        out = capsys.readouterr().out
        assert "FaultPlan(3 events, seed=9)" in out

    def test_no_faults_rejected(self):
        with pytest.raises(SystemExit):
            main(["faults", "--nodes", "2", "--env", "hybrid"])

    def test_bad_event_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["faults", "--nodes", "2", "--env", "hybrid",
                  "--event", "gremlins:node=0"])

    def test_campaign_summary(self, capsys):
        assert main([
            "faults", "--nodes", "2", "--env", "hybrid", "--group", "1",
            "--event", "packet-loss:node=0,time=0,loss=0.05",
            "--campaign", "500000",
        ]) == 0
        out = capsys.readouterr().out
        assert "elastic campaign" in out
        assert "goodput:" in out
