"""Paper Figure 2, reproduced exactly.

The figure's worked example: a 6-layer transformer trained across 2
clusters of 2 nodes x 4 GPUs; nodes 1-2 on InfiniBand, nodes 3-4 on RoCE;
no inter-cluster interconnect.  Parallelism degrees d=2, t=2, p=4 — wait,
the caption says data 2, tensor 2, pipeline 4: 2*2*4 = 16 GPUs.  Pipeline
runs between the clusters over Ethernet; the layers are *unevenly*
partitioned into stages; data parallelism stays inside each cluster on
RDMA; tensor parallelism stays inside each node.

This test asserts each of those sentences against the actual plan.

Note on stage counts: the caption says the layers split into "2 stages"
across the clusters while the degrees give p=4 pipeline stages (2 per
cluster); we verify the p=4 structure and the cluster-level 2-way split.
"""

import pytest

from repro.core.nic_selection import audit_parallel_groups
from repro.core.scheduler import HolmesScheduler
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.model.config import GPTConfig
from repro.network.fabric import Fabric
from repro.network.transport import TransportKind
from repro.parallel.degrees import ParallelConfig


@pytest.fixture(scope="module")
def figure2():
    topology = make_topology(
        [(2, NICType.INFINIBAND), (2, NICType.ROCE)],
        inter_cluster_rdma=False,
        gpus_per_node=4,
    )
    model = GPTConfig(num_layers=6, hidden_size=512, num_attention_heads=8,
                      seq_length=128, vocab_size=2048)
    parallel = ParallelConfig(tensor=2, pipeline=4, data=2,
                              micro_batch_size=1, global_batch_size=8)
    plan = HolmesScheduler().plan(topology, parallel, model)
    return topology, model, parallel, plan


class TestFigure2:
    def test_sixteen_gpus_two_clusters(self, figure2):
        topology, _, parallel, _ = figure2
        assert topology.world_size == 16 == parallel.world_size
        assert topology.num_clusters == 2

    def test_tensor_parallelism_within_nodes(self, figure2):
        """'Tensor parallelism is implemented within each node using PCI-E'
        — every TP group's members share a node."""
        topology, _, _, plan = figure2
        for group in plan.physical_groups["tensor"]:
            nodes = {topology.device(r).node_global for r in group}
            assert len(nodes) == 1

    def test_data_parallelism_within_clusters_on_rdma(self, figure2):
        """'Data parallelism is performed within each cluster using RDMA.'"""
        topology, _, _, plan = figure2
        fabric = Fabric(topology)
        for group in plan.physical_groups["data"]:
            clusters = {topology.device(r).cluster_id for r in group}
            assert len(clusters) == 1
            transport = fabric.group_transport(group)
            assert transport.kind.is_rdma or transport.kind.is_intra_node

    def test_pipeline_crosses_clusters_over_ethernet(self, figure2):
        """'There is no high-speed interconnect between the two clusters,
        and communication between them relies solely on low-speed
        Ethernet.'"""
        topology, _, _, plan = figure2
        fabric = Fabric(topology)
        crossing_found = False
        for group in plan.physical_groups["pipeline"]:
            for src, dst in zip(group, group[1:]):
                if not topology.same_cluster(src, dst):
                    crossing_found = True
                    assert fabric.transport(src, dst).kind == TransportKind.TCP
        assert crossing_found

    def test_layers_unevenly_partitioned_by_cluster(self, figure2):
        """'The model's layers are unevenly partitioned ... and further
        distributed to different GPU devices across the two clusters': the
        IB cluster's stages carry at least as many layers as RoCE's."""
        topology, _, _, plan = figure2
        # Stage s lives in the cluster hosting its first physical rank.
        per_cluster = {0: 0, 1: 0}
        for stage, layers in enumerate(plan.stage_layers):
            phys = plan.placement.physical(plan.layout.stage_ranks(stage)[0])
            per_cluster[topology.device(phys).cluster_id] += layers
        assert sum(per_cluster.values()) == 6
        ib_cluster = 0  # listed first in this topology
        assert per_cluster[ib_cluster] >= per_cluster[1]

    def test_cluster_level_two_way_split(self, figure2):
        """p=4 stages group into 2 cluster-level blocks of 2 stages each."""
        topology, _, _, plan = figure2
        stage_clusters = []
        for stage in range(4):
            phys = plan.placement.physical(plan.layout.stage_ranks(stage)[0])
            stage_clusters.append(topology.device(phys).cluster_id)
        # Contiguous cluster blocks: e.g. [0, 0, 1, 1].
        assert stage_clusters == sorted(stage_clusters)
        assert stage_clusters.count(0) == 2
        assert stage_clusters.count(1) == 2

    def test_audit_fully_selected(self, figure2):
        topology, _, _, plan = figure2
        audit = audit_parallel_groups(Fabric(topology), plan.physical_groups)
        assert audit.fully_selected
        assert audit.dp_rdma_fraction == 1.0

    def test_simulation_runs_on_figure2_machine(self, figure2):
        from repro.core.engine import TrainingSimulation

        topology, model, parallel, plan = figure2
        result = TrainingSimulation(plan, model, trace_enabled=False).run()
        assert result.iteration_time > 0
