"""Hypothesis invariants over the hardware/network/cost layers."""

from hypothesis import given, settings, strategies as st

from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.network.costmodel import CollectiveCostModel
from repro.network.fabric import Fabric
from repro.network.transport import Transport, TransportKind, resolve_transport

FAMILIES = [NICType.INFINIBAND, NICType.ROCE, NICType.ETHERNET]


@st.composite
def topologies(draw):
    shapes = [
        (draw(st.integers(1, 2)), draw(st.sampled_from(FAMILIES)))
        for _ in range(draw(st.integers(1, 3)))
    ]
    return make_topology(
        shapes, inter_cluster_rdma=draw(st.booleans()), gpus_per_node=2
    )


class TestTopologyInvariants:
    @given(topologies(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_effective_nic_symmetric(self, topo, data):
        a = data.draw(st.integers(0, topo.world_size - 1))
        b = data.draw(st.integers(0, topo.world_size - 1))
        if a == b:
            return
        assert topo.effective_nic_type(a, b) == topo.effective_nic_type(b, a)

    @given(topologies(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_transport_symmetric(self, topo, data):
        a = data.draw(st.integers(0, topo.world_size - 1))
        b = data.draw(st.integers(0, topo.world_size - 1))
        if a == b:
            return
        ta = resolve_transport(topo, a, b)
        tb = resolve_transport(topo, b, a)
        assert ta.kind == tb.kind
        assert ta.bandwidth == tb.bandwidth

    @given(topologies())
    @settings(max_examples=40, deadline=None)
    def test_group_transport_no_faster_than_any_pair(self, topo):
        """The slowest-edge rule: a group's negotiated bandwidth never
        exceeds the bandwidth of its slowest node pair."""
        fabric = Fabric(topo)
        ranks = list(range(0, topo.world_size, 2))
        if len(ranks) < 2:
            return
        group_bw = fabric.group_transport(ranks).bandwidth
        reps = {topo.device(r).node_global: r for r in ranks}
        rep_ranks = list(reps.values())
        if len(rep_ranks) < 2:
            return
        pair_bws = [
            fabric.transport(a, b).bandwidth
            for i, a in enumerate(rep_ranks)
            for b in rep_ranks[i + 1 :]
        ]
        assert group_bw <= min(pair_bws) + 1e-9

    @given(topologies(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_mixed_rdma_group_is_tcp(self, topo, data):
        fabric = Fabric(topo)
        ranks = data.draw(
            st.lists(
                st.integers(0, topo.world_size - 1),
                min_size=2, max_size=6, unique=True,
            )
        )
        families = {topo.nic_type_of(r) for r in ranks}
        rdma = {f for f in families if f.is_rdma}
        if len(rdma) > 1:
            transport = fabric.group_transport(ranks)
            if not transport.kind.is_intra_node:
                assert transport.kind == TransportKind.TCP


class TestCostModelInvariants:
    EDGE = Transport(TransportKind.RDMA_IB, bandwidth=20e9, latency=2e-6)

    @given(
        nbytes=st.integers(1, 1 << 32),
        d=st.integers(2, 64),
        op=st.sampled_from(["allreduce", "reduce_scatter", "allgather",
                            "broadcast"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_costs_positive_and_finite(self, nbytes, d, op):
        model = CollectiveCostModel()
        t = model.collective(op, nbytes, d, self.EDGE)
        assert 0 < t < 1e6

    @given(nbytes=st.integers(1, 1 << 30), d=st.integers(2, 32))
    @settings(max_examples=60, deadline=None)
    def test_rs_never_exceeds_allreduce(self, nbytes, d):
        model = CollectiveCostModel()
        assert model.ring_reduce_scatter(
            nbytes, d, self.EDGE
        ) <= model.ring_allreduce(nbytes, d, self.EDGE)

    @given(
        nbytes=st.integers(1 << 20, 1 << 30),
        d=st.integers(2, 32),
        k=st.integers(2, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_bandwidth_term_superlinear_never(self, nbytes, d, k):
        """k-fold larger payload costs at most k-fold more (latency terms
        make small payloads relatively more expensive, never less)."""
        model = CollectiveCostModel()
        one = model.ring_allreduce(nbytes, d, self.EDGE)
        big = model.ring_allreduce(k * nbytes, d, self.EDGE)
        assert big <= k * one + 1e-9
