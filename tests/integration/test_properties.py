"""Property-based invariants over randomised machines and configurations.

These catch the class of bugs example-based tests miss: a placement that
stops being a bijection on some odd cluster shape, an iteration that ends
before its compute lower bound, a plan whose partition loses a layer.
"""

from hypothesis import given, settings, strategies as st

from repro.core.engine import TrainingSimulation
from repro.core.scheduler import HolmesScheduler
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.model.config import GPTConfig
from repro.model.flops import flops_per_iteration
from repro.parallel.degrees import ParallelConfig

MODEL = GPTConfig(num_layers=12, hidden_size=512, num_attention_heads=8,
                  seq_length=256, vocab_size=4096)

FAMILIES = [NICType.INFINIBAND, NICType.ROCE, NICType.ETHERNET]


@st.composite
def machines(draw):
    """Random 1-3 cluster machines with 2 GPUs per node."""
    num_clusters = draw(st.integers(1, 3))
    shapes = [
        (draw(st.integers(1, 3)), draw(st.sampled_from(FAMILIES)))
        for _ in range(num_clusters)
    ]
    inter = draw(st.booleans())
    return make_topology(shapes, inter_cluster_rdma=inter, gpus_per_node=2)


@st.composite
def machine_and_config(draw):
    topo = draw(machines())
    N = topo.world_size
    # Valid (t, p, d): t in {1, 2}, p divides what's left.
    t = draw(st.sampled_from([1, 2]))
    remaining = N // t
    divisors = [p for p in range(1, min(remaining, MODEL.num_layers) + 1)
                if remaining % p == 0]
    p = draw(st.sampled_from(divisors))
    d = remaining // p
    mbs = draw(st.sampled_from([1, 2]))
    m = draw(st.integers(1, 4))
    parallel = ParallelConfig(tensor=t, pipeline=p, data=d,
                              micro_batch_size=mbs,
                              global_batch_size=d * mbs * m)
    return topo, parallel


class TestSchedulerProperties:
    @given(machine_and_config())
    @settings(max_examples=50, deadline=None)
    def test_plan_is_structurally_valid(self, mc):
        topo, parallel = mc
        plan = HolmesScheduler().plan(topo, parallel, MODEL)
        N = topo.world_size
        # Placement is a bijection.
        physical = [plan.placement.physical(i) for i in range(N)]
        assert sorted(physical) == list(range(N))
        # Partition conserves layers and leaves no stage empty.
        assert sum(plan.stage_layers) == MODEL.num_layers
        assert all(c >= 1 for c in plan.stage_layers)
        assert len(plan.stage_nics) == parallel.pipeline
        # Physical groups still partition the rank space.
        for groups in plan.physical_groups.values():
            flat = sorted(r for g in groups for r in g)
            assert flat == list(range(N))

    @given(machine_and_config())
    @settings(max_examples=50, deadline=None)
    def test_holmes_never_straddles_more_than_identity(self, mc):
        topo, parallel = mc
        scheduler = HolmesScheduler()
        holmes = scheduler.plan(topo, parallel, MODEL)
        identity = scheduler.plan(
            topo, parallel, MODEL, placement_strategy="identity",
            partition_strategy="uniform",
        )
        assert holmes.straddling_stages <= identity.straddling_stages


class TestEngineProperties:
    @given(machine_and_config())
    @settings(max_examples=25, deadline=None)
    def test_iteration_respects_compute_lower_bound(self, mc):
        """No simulated iteration can beat perfect-efficiency compute."""
        topo, parallel = mc
        plan = HolmesScheduler().plan(topo, parallel, MODEL)
        result = TrainingSimulation(
            plan, MODEL, trace_enabled=False, iteration_overhead=0.0
        ).run()
        gpu = topo.node_of(0).gpu
        lower_bound = flops_per_iteration(
            MODEL, parallel.global_batch_size
        ) / (topo.world_size * gpu.effective_flops)
        assert result.iteration_time >= lower_bound * 0.999

    @given(machine_and_config())
    @settings(max_examples=25, deadline=None)
    def test_determinism(self, mc):
        topo, parallel = mc
        plan = HolmesScheduler().plan(topo, parallel, MODEL)
        a = TrainingSimulation(plan, MODEL, trace_enabled=False).run()
        b = TrainingSimulation(plan, MODEL, trace_enabled=False).run()
        assert a.iteration_time == b.iteration_time

    @given(st.integers(1, 3), st.sampled_from([1, 2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_ethernet_never_faster_than_infiniband(self, nodes, mbs):
        from repro.hardware.presets import homogeneous_topology

        results = {}
        for family in (NICType.INFINIBAND, NICType.ETHERNET):
            topo = homogeneous_topology(nodes, family, gpus_per_node=2)
            N = topo.world_size
            p = 2 if N >= 4 else 1
            parallel = ParallelConfig(
                tensor=1, pipeline=p, data=N // p,
                micro_batch_size=mbs,
                global_batch_size=(N // p) * mbs * 2,
            )
            plan = HolmesScheduler().plan(topo, parallel, MODEL)
            results[family] = TrainingSimulation(
                plan, MODEL, trace_enabled=False
            ).run().iteration_time
        assert results[NICType.ETHERNET] >= results[NICType.INFINIBAND]
