"""Unit tests for the Fabric: caching, group transports, DES resources."""

import pytest

from repro.errors import CommunicatorError, TransportError
from repro.hardware.nic import NICType
from repro.hardware.presets import ETH_25, ROCE_200, make_topology
from repro.network.fabric import Fabric
from repro.network.transport import TransportKind
from repro.simcore.engine import SimEngine


@pytest.fixture
def hybrid_topo():
    return make_topology(
        [(2, NICType.ROCE), (2, NICType.INFINIBAND)], inter_cluster_rdma=False
    )


@pytest.fixture
def fabric(hybrid_topo):
    return Fabric(hybrid_topo)


class TestPairTransport:
    def test_caches_pairs_symmetrically(self, fabric):
        t1 = fabric.transport(0, 16)
        t2 = fabric.transport(16, 0)
        assert t1 is t2

    def test_force_ethernet_overrides_rdma(self, hybrid_topo):
        fabric = Fabric(hybrid_topo, force_ethernet=True)
        t = fabric.transport(0, 8)  # same RoCE cluster, normally RDMA
        assert t.kind == TransportKind.TCP
        assert t.bandwidth == pytest.approx(ETH_25.effective_bandwidth)

    def test_force_ethernet_keeps_nvlink(self, hybrid_topo):
        fabric = Fabric(hybrid_topo, force_ethernet=True)
        assert fabric.transport(0, 1).kind == TransportKind.NVLINK


class TestGroupTransport:
    def test_single_node_group_uses_intra_link(self, fabric):
        t = fabric.group_transport([0, 1, 2])
        assert t.kind == TransportKind.NVLINK

    def test_homogeneous_group_uses_rdma(self, fabric):
        t = fabric.group_transport(list(range(0, 16)))
        assert t.kind == TransportKind.RDMA_ROCE
        assert t.bandwidth == pytest.approx(ROCE_200.effective_bandwidth)

    def test_heterogeneous_group_collapses_to_tcp(self, fabric):
        """The slowest-edge rule: one IB/RoCE cross pair drags the whole
        ring to TCP (the pathology Automatic NIC Selection removes)."""
        t = fabric.group_transport([0, 8, 16, 24])
        assert t.kind == TransportKind.TCP

    def test_too_small_group_rejected(self, fabric):
        with pytest.raises(CommunicatorError):
            fabric.group_transport([3])


class TestCollectiveTime:
    def test_trivial_groups_are_free(self, fabric):
        assert fabric.collective_time("allreduce", [0], 1 << 20) == 0.0
        assert fabric.collective_time("allreduce", [0, 8], 0) == 0.0

    def test_rdma_group_faster_than_degraded(self, fabric):
        rdma = fabric.collective_time("allreduce", [16, 24], 1 << 30)
        mixed = fabric.collective_time("allreduce", [8, 16], 1 << 30)
        assert rdma < mixed

    def test_p2p_time_positive(self, fabric):
        assert fabric.p2p_time(0, 16, 1 << 20) > 0.0

    def test_cross_cluster_p2p_slower_with_factor(self, hybrid_topo):
        from repro.network.costmodel import CostModelConfig

        fabric = Fabric(
            hybrid_topo, cost_config=CostModelConfig(inter_cluster_p2p_factor=0.5)
        )
        # 0-8: same cluster over RoCE; 0-16: cross-cluster over Ethernet.
        occ_intra = fabric.p2p_occupancy(0, 8, 1 << 24)
        occ_cross = fabric.p2p_occupancy(0, 16, 1 << 24)
        assert occ_cross > occ_intra


class TestDESResources:
    def test_nic_resource_requires_engine(self, fabric):
        with pytest.raises(TransportError):
            fabric.nic_tx_resource(0, NICType.ETHERNET)

    def test_nic_resource_shared_per_node(self, hybrid_topo):
        fabric = Fabric(hybrid_topo, engine=SimEngine())
        a = fabric.nic_tx_resource(0, NICType.ETHERNET)
        b = fabric.nic_tx_resource(7, NICType.ETHERNET)  # same node
        c = fabric.nic_tx_resource(8, NICType.ETHERNET)  # next node
        assert a is b
        assert a is not c

    def test_uplink_resource_per_cluster_pair(self, hybrid_topo):
        fabric = Fabric(hybrid_topo, engine=SimEngine())
        assert fabric.uplink_resource(0, 8) is None  # same cluster
        up1 = fabric.uplink_resource(0, 16)
        up2 = fabric.uplink_resource(24, 8)
        assert up1 is up2

    def test_uplink_occupancy(self, hybrid_topo):
        fabric = Fabric(hybrid_topo, engine=SimEngine())
        bw = fabric.cost_model.config.inter_cluster_uplink
        assert fabric.uplink_occupancy(int(bw)) == pytest.approx(1.0)

    def test_attach_engine_resets_resources(self, hybrid_topo):
        fabric = Fabric(hybrid_topo, engine=SimEngine())
        old = fabric.nic_tx_resource(0, NICType.ETHERNET)
        fabric.attach_engine(SimEngine())
        new = fabric.nic_tx_resource(0, NICType.ETHERNET)
        assert old is not new
