"""Unit tests for NIC contention accounting."""

import pytest

from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology, homogeneous_topology
from repro.network.contention import (
    concurrent_groups_per_nic,
    group_cluster_span,
    group_node_span,
    uniform_concurrency,
)


@pytest.fixture
def topo():
    # 4 nodes x 8 GPUs, one IB cluster.
    return homogeneous_topology(4, NICType.INFINIBAND)


class TestSpans:
    def test_node_span(self, topo):
        assert group_node_span(topo, [0, 1, 2]) == 1
        assert group_node_span(topo, [0, 8, 16]) == 3

    def test_cluster_span(self):
        topo = make_topology([(1, NICType.ROCE), (1, NICType.INFINIBAND)])
        assert group_cluster_span(topo, [0, 1]) == 1
        assert group_cluster_span(topo, [0, 8]) == 2


class TestConcurrency:
    def test_single_group_per_node_is_one(self, topo):
        # One DP group spanning nodes 0-1 (t=1 layout).
        groups = [list(range(0, 16)), list(range(16, 32))]
        factors = concurrent_groups_per_nic(topo, groups)
        assert factors == {0: 1, 1: 1}

    def test_tensor_parallel_groups_share_nics(self, topo):
        # t=8-style layout: 8 DP groups, each one rank per node.
        groups = [[g, g + 8, g + 16, g + 24] for g in range(8)]
        factors = concurrent_groups_per_nic(topo, groups)
        assert all(f == 8 for f in factors.values())

    def test_intra_node_group_has_factor_one(self, topo):
        groups = [[0, 1, 2, 3], [8, 16]]
        factors = concurrent_groups_per_nic(topo, groups)
        assert factors[0] == 1  # single node: no NIC used
        assert factors[1] == 1

    def test_intra_node_groups_do_not_count_against_nic(self, topo):
        # One multi-node ring plus many intra-node groups on its nodes.
        groups = [[0, 8], [1, 2], [3, 4], [9, 10]]
        factors = concurrent_groups_per_nic(topo, groups)
        assert factors[0] == 1

    def test_uniform_concurrency_is_max(self, topo):
        groups = [[0, 8], [1, 9], [16, 24]]
        assert uniform_concurrency(topo, groups) == 2

    def test_empty_groups(self, topo):
        assert uniform_concurrency(topo, []) == 1
