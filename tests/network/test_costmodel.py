"""Unit and property tests for the collective cost model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.network.costmodel import CollectiveCostModel, CostModelConfig
from repro.network.transport import Transport, TransportKind

RDMA = Transport(TransportKind.RDMA_IB, bandwidth=20e9, latency=2e-6)
TCP = Transport(TransportKind.TCP, bandwidth=2e9, latency=30e-6)
NVL = Transport(TransportKind.NVLINK, bandwidth=250e9, latency=3e-6)


@pytest.fixture
def model():
    return CollectiveCostModel()


class TestRingAllreduce:
    def test_single_rank_is_free(self, model):
        assert model.ring_allreduce(1 << 30, 1, RDMA) == 0.0

    def test_zero_bytes_is_free(self, model):
        assert model.ring_allreduce(0, 16, RDMA) == 0.0

    def test_bandwidth_term_dominates_large_messages(self, model):
        nbytes = 8 << 30  # 8 GiB
        d = 16
        t = model.ring_allreduce(nbytes, d, RDMA)
        expected_bw = 2 * nbytes * (d - 1) / d / RDMA.bandwidth
        assert t == pytest.approx(expected_bw, rel=0.05)

    def test_latency_term_dominates_small_messages(self, model):
        t = model.ring_allreduce(64, 16, TCP)
        latency_term = 2 * 15 * (TCP.latency + model.config.step_overhead[TCP.kind])
        assert t == pytest.approx(latency_term, rel=0.01)

    def test_concurrency_divides_bandwidth(self, model):
        base = model.ring_allreduce(1 << 30, 8, RDMA)
        shared = model.ring_allreduce(1 << 30, 8, RDMA, concurrent=4)
        assert shared > 3.5 * base  # latency term unchanged, bw term x4

    def test_invalid_args(self, model):
        with pytest.raises(ConfigurationError):
            model.ring_allreduce(-1, 4, RDMA)
        with pytest.raises(ConfigurationError):
            model.ring_allreduce(1, 0, RDMA)
        with pytest.raises(ConfigurationError):
            model.ring_allreduce(1, 4, RDMA, concurrent=0)
        with pytest.raises(ConfigurationError):
            model.ring_allreduce(1, 4, RDMA, node_span=0)

    @given(
        nbytes=st.integers(min_value=1, max_value=1 << 34),
        d=st.integers(min_value=2, max_value=128),
    )
    def test_property_allreduce_equals_rs_plus_ag(self, nbytes, d):
        """Ring all-reduce = reduce-scatter + all-gather, exactly."""
        model = CollectiveCostModel()
        ar = model.ring_allreduce(nbytes, d, RDMA)
        rs = model.ring_reduce_scatter(nbytes, d, RDMA)
        ag = model.ring_allgather(nbytes, d, RDMA)
        assert ar == pytest.approx(rs + ag, rel=1e-9)

    @given(
        nbytes=st.integers(min_value=1, max_value=1 << 32),
        d=st.integers(min_value=2, max_value=64),
    )
    def test_property_monotone_in_bytes_and_transport(self, nbytes, d):
        model = CollectiveCostModel()
        assert model.ring_allreduce(nbytes, d, RDMA) <= model.ring_allreduce(
            2 * nbytes, d, RDMA
        )
        assert model.ring_allreduce(nbytes, d, RDMA) < model.ring_allreduce(
            nbytes, d, TCP
        )


class TestBroadcast:
    def test_log_depth(self, model):
        nbytes = 1 << 20
        t8 = model.tree_broadcast(nbytes, 8, RDMA)
        t64 = model.tree_broadcast(nbytes, 64, RDMA)
        assert t64 == pytest.approx(2 * t8, rel=0.01)  # log2: 3 vs 6 rounds

    def test_single_rank_free(self, model):
        assert model.tree_broadcast(1 << 20, 1, RDMA) == 0.0


class TestDispatch:
    @pytest.mark.parametrize(
        "op", ["allreduce", "reduce_scatter", "allgather", "broadcast"]
    )
    def test_known_ops(self, model, op):
        assert model.collective(op, 1 << 20, 4, RDMA) > 0.0

    def test_unknown_op_raises(self, model):
        with pytest.raises(ConfigurationError, match="unknown collective"):
            model.collective("alltoall", 1, 4, RDMA)


class TestP2P:
    def test_includes_transport_overheads(self, model):
        t = model.p2p(2_000_000, TCP)
        expected = TCP.latency + model.config.p2p_overhead[TCP.kind] + 1e-3
        assert t == pytest.approx(expected)

    def test_cross_cluster_factor(self):
        config = CostModelConfig(inter_cluster_p2p_factor=0.5)
        model = CollectiveCostModel(config)
        local = model.p2p(1 << 20, TCP)
        remote = model.p2p(1 << 20, TCP, cross_cluster=True)
        assert remote > local

    def test_occupancy_excludes_latency(self, model):
        occ = model.p2p_nic_occupancy(2_000_000, TCP)
        assert occ == pytest.approx(model.config.p2p_overhead[TCP.kind] + 1e-3)

    def test_negative_bytes_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.p2p(-1, TCP)
        with pytest.raises(ConfigurationError):
            model.p2p_nic_occupancy(-1, TCP)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bucket_bytes=0),
            dict(congestion_beta=-0.1),
            dict(inter_cluster_p2p_factor=0.0),
            dict(inter_cluster_p2p_factor=1.5),
            dict(inter_cluster_uplink=0.0),
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CostModelConfig(**kwargs)

    def test_with_congestion(self):
        config = CostModelConfig().with_congestion(0.25)
        assert config.congestion_beta == 0.25

    def test_congestion_slows_multi_node_rings(self):
        model = CollectiveCostModel(CostModelConfig(congestion_beta=0.5))
        near = model.ring_allreduce(1 << 30, 8, RDMA, node_span=1)
        far = model.ring_allreduce(1 << 30, 8, RDMA, node_span=4)
        assert far > near

    def test_congestion_skips_intra_node_links(self):
        model = CollectiveCostModel(CostModelConfig(congestion_beta=0.5))
        near = model.ring_allreduce(1 << 30, 8, NVL, node_span=1)
        far = model.ring_allreduce(1 << 30, 8, NVL, node_span=4)
        assert far == pytest.approx(near)
