"""Tiered-fidelity engine: classification, telescoping, and diagnostics.

The ``auto`` tier's aggregate collective must *telescope* — one Barrier
event priced by the closed-form oracle spans exactly the window the oracle
reports (float identity, not the 1% executed-vs-oracle band) — and the
:class:`~repro.network.contention.FidelityPolicy` must classify spans
conservatively: anything contended, degraded, or fault-exposed drops down
to executed DES, and forcing ``analytic`` on such a scenario is a loud
:class:`~repro.errors.FidelityError`, never a silently wrong number.
"""

import dataclasses

import pytest

from repro.collectives.executor import CollectiveExecutor
from repro.collectives.p2p import ChannelRegistry
from repro.errors import ConfigurationError, FidelityError
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.network.contention import FIDELITY_MODES, FidelityPolicy
from repro.network.fabric import Fabric
from repro.simcore.engine import SimEngine
from repro.units import MB
from repro.validate.metamorphic import FIDELITY_RTOL
from repro.validate.scenarios import ScenarioSpec, sample_scenarios

FAMILIES = [NICType.INFINIBAND, NICType.ROCE, NICType.ETHERNET]

#: a contention-free scenario: pure data parallelism, no p2p, no faults
FLAT_SPEC = ScenarioSpec(
    name="flat",
    env="ib",
    nodes=4,
    gpus_per_node=1,
    num_layers=4,
    hidden=256,
    heads=4,
    tensor=1,
    pipeline=1,
    data=4,
    micro_batch_size=1,
    num_microbatches=2,
)


def run_aggregate(topo, op, ranks, nbytes):
    """Execute one collective through the auto-tier aggregate path."""
    engine = SimEngine()
    fabric = Fabric(topo, engine=engine)
    policy = FidelityPolicy("auto", fabric, [tuple(ranks)])
    assert policy.collective_analytic(ranks)
    executor = CollectiveExecutor(fabric, ChannelRegistry(engine), fidelity=policy)
    for r in ranks:
        engine.process(
            executor.run_op(op, ranks, r, float(nbytes), tag="op"),
            name=f"rank{r}",
        )
    engine.run()
    return engine.now


class TestAggregateTelescopes:
    """Satellite property: the auto-tier aggregate collective telescopes
    *exactly* to the closed form the oracle reports."""

    pytestmark = pytest.mark.property

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("group_size", [2, 4, 8])
    @pytest.mark.parametrize("op", ["reduce_scatter", "allgather", "allreduce"])
    def test_matches_oracle_to_float_identity(self, family, group_size, op):
        topo = homogeneous_topology(group_size, family, gpus_per_node=1)
        ranks = list(range(group_size))
        makespan = run_aggregate(topo, op, ranks, 64 * MB)
        oracle = Fabric(topo).collective_time(op, ranks, 64 * MB)
        assert makespan == pytest.approx(oracle, rel=1e-12)

    def test_hierarchical_matches_oracle(self):
        from repro.collectives.hierarchical import hierarchical_allreduce_time

        topo = homogeneous_topology(4, NICType.INFINIBAND, gpus_per_node=2)
        ranks = list(range(8))
        makespan = run_aggregate(topo, "hierarchical_allreduce", ranks, 64 * MB)
        oracle = hierarchical_allreduce_time(Fabric(topo), ranks, 64 * MB)
        assert makespan == pytest.approx(oracle, rel=1e-12)


class TestPolicyClassification:
    def _fabric(self, nodes=4, gpus_per_node=2):
        topo = homogeneous_topology(nodes, NICType.INFINIBAND, gpus_per_node)
        return Fabric(topo, engine=SimEngine())

    def test_bad_mode_rejected(self):
        with pytest.raises(FidelityError):
            FidelityPolicy("turbo", self._fabric(), [])

    def test_executed_mode_prices_nothing_analytically(self):
        fabric = self._fabric()
        policy = FidelityPolicy("executed", fabric, [(0, 2, 4, 6)])
        assert not policy.collective_analytic((0, 2, 4, 6))
        assert policy.summary()["fallback_reasons"] == []

    def test_single_node_ring_is_analytic(self):
        fabric = self._fabric()
        policy = FidelityPolicy("auto", fabric, [(0, 1)])
        assert policy.collective_analytic((0, 1))

    def test_rings_sharing_a_nic_fall_back(self):
        fabric = self._fabric()
        ring_a, ring_b = (0, 2, 4, 6), (1, 3, 5, 7)
        policy = FidelityPolicy("auto", fabric, [ring_a, ring_b])
        assert not policy.collective_analytic(ring_a)
        assert not policy.collective_analytic(ring_b)
        assert any("shares NIC" in r for r in policy.reasons)

    def test_faults_force_full_fallback(self):
        fabric = self._fabric()
        policy = FidelityPolicy("auto", fabric, [(0, 2, 4, 6)], has_faults=True)
        assert not policy.collective_analytic((0, 2, 4, 6))
        assert any("fault" in r for r in policy.reasons)

    def test_analytic_mode_raises_on_contention(self):
        """Satellite property: ``analytic`` on a scenario it cannot price
        is a clear diagnostic, not a wrong answer."""
        fabric = self._fabric()
        with pytest.raises(FidelityError) as exc:
            FidelityPolicy("analytic", fabric, [(0, 2, 4, 6), (1, 3, 5, 7)])
        assert "executed DES" in str(exc.value)
        assert exc.value.reasons


class TestEndToEnd:
    pytestmark = pytest.mark.property

    def test_auto_matches_executed_within_tolerance(self):
        executed = FLAT_SPEC.run()
        auto = FLAT_SPEC.run(fidelity="auto")
        rel = abs(auto.iteration_time - executed.iteration_time) / (
            executed.iteration_time
        )
        assert rel <= FIDELITY_RTOL

    def test_analytic_refuses_faulted_scenario(self):
        spec = next(
            s for s in sample_scenarios(20, seed=0) if s.fault_seed is not None
        )
        with pytest.raises(FidelityError) as exc:
            spec.run(fidelity="analytic")
        assert "fault" in str(exc.value)


class TestScenarioFidelityContract:
    def test_fidelity_is_part_of_the_digest(self):
        base = FLAT_SPEC.to_scenario()
        auto = dataclasses.replace(base, fidelity="auto")
        assert base.digest() != auto.digest()
        assert base.canonical()["fidelity"] == "executed"
        assert auto.canonical()["fidelity"] == "auto"

    def test_canonical_round_trip_and_legacy_default(self):
        from repro.api import Scenario

        auto = dataclasses.replace(FLAT_SPEC.to_scenario(), fidelity="auto")
        assert Scenario.from_canonical(auto.canonical()) == auto
        legacy = dict(FLAT_SPEC.to_scenario().canonical())
        legacy.pop("fidelity")
        assert Scenario.from_canonical(legacy).fidelity == "executed"

    def test_invalid_fidelity_rejected(self):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(FLAT_SPEC.to_scenario(), fidelity="bogus")

    def test_modes_constant_exported(self):
        import repro.api as api

        assert api.FIDELITY_MODES == FIDELITY_MODES == (
            "executed", "analytic", "auto",
        )
