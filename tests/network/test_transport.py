"""Unit tests for transport resolution."""

import pytest

from repro.errors import TransportError
from repro.hardware.nic import NICType
from repro.hardware.presets import ETH_25, IB_200, NVLINK, ROCE_200, make_topology
from repro.network.transport import (
    Transport,
    TransportKind,
    nic_family_for,
    resolve_transport,
)


@pytest.fixture
def hybrid_topo():
    return make_topology(
        [(2, NICType.INFINIBAND), (2, NICType.ROCE)], inter_cluster_rdma=False
    )


class TestTransportKind:
    def test_intra_node_kinds(self):
        assert TransportKind.NVLINK.is_intra_node
        assert TransportKind.PCIE.is_intra_node
        assert not TransportKind.TCP.is_intra_node

    def test_rdma_kinds(self):
        assert TransportKind.RDMA_IB.is_rdma
        assert TransportKind.RDMA_ROCE.is_rdma
        assert not TransportKind.TCP.is_rdma

    def test_nic_family_for_network_kinds(self):
        assert nic_family_for(TransportKind.RDMA_IB) == NICType.INFINIBAND
        assert nic_family_for(TransportKind.TCP) == NICType.ETHERNET

    def test_nic_family_for_intra_node_raises(self):
        with pytest.raises(TransportError):
            nic_family_for(TransportKind.NVLINK)


class TestTransferTime:
    def test_includes_latency_and_bandwidth(self):
        t = Transport(TransportKind.TCP, bandwidth=1e9, latency=1e-3)
        assert t.transfer_time(1_000_000) == pytest.approx(2e-3)

    def test_concurrent_flows_share_fairly(self):
        t = Transport(TransportKind.TCP, bandwidth=1e9, latency=0.0)
        assert t.transfer_time(1_000_000, concurrent=4) == pytest.approx(4e-3)

    def test_invalid_args_rejected(self):
        t = Transport(TransportKind.TCP, bandwidth=1e9, latency=0.0)
        with pytest.raises(TransportError):
            t.transfer_time(-1)
        with pytest.raises(TransportError):
            t.transfer_time(1, concurrent=0)


class TestResolveTransport:
    def test_intra_node_is_nvlink(self, hybrid_topo):
        t = resolve_transport(hybrid_topo, 0, 1)
        assert t.kind == TransportKind.NVLINK
        assert t.bandwidth == NVLINK.bandwidth

    def test_intra_cluster_ib(self, hybrid_topo):
        t = resolve_transport(hybrid_topo, 0, 8)
        assert t.kind == TransportKind.RDMA_IB
        assert t.bandwidth == pytest.approx(IB_200.effective_bandwidth)

    def test_intra_cluster_roce(self, hybrid_topo):
        t = resolve_transport(hybrid_topo, 16, 24)
        assert t.kind == TransportKind.RDMA_ROCE
        assert t.bandwidth == pytest.approx(ROCE_200.effective_bandwidth)

    def test_cross_cluster_falls_to_tcp(self, hybrid_topo):
        t = resolve_transport(hybrid_topo, 0, 16)
        assert t.kind == TransportKind.TCP
        assert t.bandwidth == pytest.approx(ETH_25.effective_bandwidth)
        # TCP latency dominated by the slower Ethernet endpoint.
        assert t.latency == pytest.approx(ETH_25.latency)

    def test_self_communication_rejected(self, hybrid_topo):
        with pytest.raises(TransportError):
            resolve_transport(hybrid_topo, 3, 3)
