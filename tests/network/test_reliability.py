"""Tests for the transport reliability model (retry/backoff pricing)."""

import pytest

from repro.errors import ConfigurationError
from repro.network.reliability import (
    RetryPolicy,
    delivery_probability,
    expected_attempts,
    expected_retry_overhead,
    reliable_transfer_time,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0,
                             backoff_cap=0.05)
        assert policy.backoff(1) == pytest.approx(0.01)
        assert policy.backoff(2) == pytest.approx(0.02)
        assert policy.backoff(3) == pytest.approx(0.04)
        assert policy.backoff(4) == pytest.approx(0.05)  # capped
        assert policy.backoff(10) == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(ack_timeout=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)


class TestExpectedAttempts:
    def test_lossless_link_sends_once(self):
        assert expected_attempts(0.0, 5) == 1.0

    def test_matches_truncated_geometric_sum(self):
        p, retries = 0.2, 4
        direct = sum(p**k for k in range(retries + 1))
        assert expected_attempts(p, retries) == pytest.approx(direct)

    def test_monotone_in_loss(self):
        a = [expected_attempts(p, 5) for p in (0.0, 0.1, 0.3, 0.6, 0.9)]
        assert a == sorted(a)
        assert all(1.0 <= x <= 6.0 for x in a)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_attempts(1.0, 5)
        with pytest.raises(ConfigurationError):
            expected_attempts(-0.1, 5)


class TestDeliveryProbability:
    def test_bounded_retries_leave_residual_failure(self):
        prob = delivery_probability(0.5, RetryPolicy(max_retries=2))
        assert prob == pytest.approx(1.0 - 0.5**3)
        assert prob < 1.0

    def test_lossless_always_delivers(self):
        assert delivery_probability(0.0, RetryPolicy(max_retries=0)) == 1.0


class TestRetryOverhead:
    def test_zero_on_clean_link(self):
        assert expected_retry_overhead(1.0, 0.0, RetryPolicy()) == 0.0

    def test_each_retry_pays_timeout_backoff_and_resend(self):
        policy = RetryPolicy(ack_timeout=0.5, max_retries=1,
                             backoff_base=0.25, backoff_factor=2.0,
                             backoff_cap=10.0)
        # One possible retry, taken with probability p: costs the resend
        # (1.0) + ack timeout (0.5) + first backoff (0.25).
        overhead = expected_retry_overhead(1.0, 0.4, policy)
        assert overhead == pytest.approx(0.4 * (1.0 + 0.5 + 0.25))

    def test_reliable_transfer_time_is_base_plus_overhead(self):
        policy = RetryPolicy()
        total = reliable_transfer_time(2.0, 0.1, policy)
        assert total == pytest.approx(
            2.0 + expected_retry_overhead(2.0, 0.1, policy)
        )
        assert total > 2.0

    def test_overhead_finite_even_at_high_loss(self):
        # Bounded retries: even a 95%-loss link costs a finite amount.
        overhead = expected_retry_overhead(1.0, 0.95, RetryPolicy())
        assert overhead < 20.0
