"""Unit tests for the GPU compute model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.gpu import GPUSpec
from repro.units import GB, teraflops


class TestGPUSpec:
    def test_effective_flops(self):
        gpu = GPUSpec("test", peak_flops=teraflops(312), memory_bytes=80 * GB,
                      base_mfu=0.5)
        assert gpu.effective_flops == pytest.approx(156e12)

    def test_compute_time(self):
        gpu = GPUSpec("test", peak_flops=1e12, memory_bytes=GB, base_mfu=1.0)
        assert gpu.compute_time(2e12) == pytest.approx(2.0)

    def test_compute_time_zero(self):
        gpu = GPUSpec("test", peak_flops=1e12, memory_bytes=GB)
        assert gpu.compute_time(0.0) == 0.0

    def test_negative_flops_rejected(self):
        gpu = GPUSpec("test", peak_flops=1e12, memory_bytes=GB)
        with pytest.raises(ConfigurationError):
            gpu.compute_time(-1.0)

    def test_with_mfu_returns_copy(self):
        gpu = GPUSpec("test", peak_flops=1e12, memory_bytes=GB, base_mfu=0.8)
        tuned = gpu.with_mfu(0.5)
        assert tuned.base_mfu == 0.5
        assert gpu.base_mfu == 0.8

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(peak_flops=0.0, memory_bytes=GB),
            dict(peak_flops=1e12, memory_bytes=0),
            dict(peak_flops=1e12, memory_bytes=GB, base_mfu=0.0),
            dict(peak_flops=1e12, memory_bytes=GB, base_mfu=1.1),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GPUSpec("bad", **kwargs)
