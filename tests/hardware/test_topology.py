"""Unit tests for ClusterTopology: rank numbering, locality, transport rules."""

import pytest

from repro.errors import TopologyError
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology, homogeneous_topology


@pytest.fixture
def figure2_topology():
    """The paper's Figure 2 machine: 2 clusters x 2 nodes x 4 GPUs,
    cluster 0 InfiniBand, cluster 1 RoCE, no inter-cluster interconnect."""
    return make_topology(
        [(2, NICType.INFINIBAND), (2, NICType.ROCE)],
        inter_cluster_rdma=False,
        gpus_per_node=4,
    )


class TestRankNumbering:
    """Paper S2.4: sequential numbering of clusters, nodes, devices."""

    def test_world_size(self, figure2_topology):
        assert figure2_topology.world_size == 16
        assert figure2_topology.num_nodes == 4
        assert figure2_topology.num_clusters == 2

    def test_ranks_are_sequential_within_nodes(self, figure2_topology):
        topo = figure2_topology
        for node in range(4):
            ranks = topo.ranks_of_node(node)
            assert ranks == list(range(node * 4, (node + 1) * 4))

    def test_device_info_round_trip(self, figure2_topology):
        topo = figure2_topology
        dev = topo.device(9)  # second GPU of node 2 = first node of cluster 1
        assert dev.rank == 9
        assert dev.cluster_id == 1
        assert dev.node_global == 2
        assert dev.node_local == 0
        assert dev.gpu_index == 1

    def test_cluster_rank_blocks(self, figure2_topology):
        topo = figure2_topology
        assert topo.ranks_of_cluster(0) == list(range(8))
        assert topo.ranks_of_cluster(1) == list(range(8, 16))

    def test_out_of_range_rank_raises(self, figure2_topology):
        with pytest.raises(TopologyError):
            figure2_topology.device(16)
        with pytest.raises(TopologyError):
            figure2_topology.device(-1)

    def test_out_of_range_node_raises(self, figure2_topology):
        with pytest.raises(TopologyError):
            figure2_topology.ranks_of_node(4)


class TestLocality:
    def test_same_node(self, figure2_topology):
        assert figure2_topology.same_node(0, 3)
        assert not figure2_topology.same_node(3, 4)

    def test_same_cluster(self, figure2_topology):
        assert figure2_topology.same_cluster(0, 7)
        assert not figure2_topology.same_cluster(7, 8)

    def test_nic_type_of(self, figure2_topology):
        assert figure2_topology.nic_type_of(0) == NICType.INFINIBAND
        assert figure2_topology.nic_type_of(8) == NICType.ROCE


class TestEffectiveNIC:
    """The paper's transport rules (S2.2, S3.2)."""

    def test_intra_node_has_no_nic(self, figure2_topology):
        assert figure2_topology.effective_nic_type(0, 1) is None

    def test_intra_cluster_uses_rdma(self, figure2_topology):
        assert (
            figure2_topology.effective_nic_type(0, 4) == NICType.INFINIBAND
        )
        assert figure2_topology.effective_nic_type(8, 12) == NICType.ROCE

    def test_cross_cluster_without_interconnect_is_ethernet(
        self, figure2_topology
    ):
        assert figure2_topology.effective_nic_type(0, 8) == NICType.ETHERNET

    def test_cross_cluster_with_interconnect_same_family_is_rdma(self):
        topo = make_topology(
            [(1, NICType.INFINIBAND), (1, NICType.INFINIBAND)],
            inter_cluster_rdma=True,
        )
        assert topo.effective_nic_type(0, 8) == NICType.INFINIBAND

    def test_cross_cluster_mixed_families_is_ethernet_even_with_interconnect(self):
        """IB and RoCE are incompatible no matter the wiring (paper S1)."""
        topo = make_topology(
            [(1, NICType.INFINIBAND), (1, NICType.ROCE)],
            inter_cluster_rdma=True,
        )
        assert topo.effective_nic_type(0, 8) == NICType.ETHERNET

    def test_ethernet_only_cluster(self):
        topo = homogeneous_topology(2, NICType.ETHERNET)
        assert topo.effective_nic_type(0, 8) == NICType.ETHERNET


class TestGroupNIC:
    def test_single_node_group_is_none(self, figure2_topology):
        assert figure2_topology.group_nic_type([0, 1, 2]) is None

    def test_homogeneous_group(self, figure2_topology):
        assert (
            figure2_topology.group_nic_type([0, 4, 5]) == NICType.INFINIBAND
        )

    def test_mixed_group_degrades_to_ethernet(self, figure2_topology):
        assert figure2_topology.group_nic_type([0, 8]) == NICType.ETHERNET

    def test_tiny_group(self, figure2_topology):
        assert figure2_topology.group_nic_type([3]) is None


class TestValidation:
    def test_empty_topology_rejected(self):
        from repro.hardware.topology import ClusterTopology

        with pytest.raises(TopologyError):
            ClusterTopology([])

    def test_mismatched_gpus_per_node_rejected(self):
        from repro.hardware.presets import make_cluster
        from repro.hardware.topology import ClusterTopology

        c0 = make_cluster(0, 1, NICType.INFINIBAND, gpus_per_node=8)
        c1 = make_cluster(1, 1, NICType.ROCE, gpus_per_node=4)
        with pytest.raises(TopologyError, match="GPUs per node"):
            ClusterTopology([c0, c1])

    def test_duplicate_cluster_ids_rejected(self):
        from repro.hardware.presets import make_cluster
        from repro.hardware.topology import ClusterTopology

        c0 = make_cluster(0, 1, NICType.INFINIBAND)
        c1 = make_cluster(0, 1, NICType.ROCE)
        with pytest.raises(TopologyError, match="duplicate"):
            ClusterTopology([c0, c1])

    def test_describe_mentions_clusters(self, figure2_topology):
        text = figure2_topology.describe()
        assert "2 cluster(s)" in text
        assert "16 GPU(s)" in text
