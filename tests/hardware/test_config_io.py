"""Tests for JSON machine files."""

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.hardware.config_io import (
    dump_topology,
    load_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.hardware.nic import NICType
from repro.hardware.presets import IB_200, make_topology
from repro.units import gbps


class TestFromDict:
    def test_minimal_machine(self):
        topo = topology_from_dict(
            {"clusters": [{"nodes": 2, "nic": "roce"},
                          {"nodes": 2, "nic": "infiniband"}]}
        )
        assert topo.world_size == 32
        assert topo.clusters[0].nic_type == NICType.ROCE
        assert not topo.inter_cluster_rdma
        # NIC falls back to the calibrated preset.
        assert topo.node_of(16).rdma_nic.bandwidth == IB_200.bandwidth

    def test_custom_gpu_and_nic(self):
        topo = topology_from_dict(
            {
                "gpus_per_node": 4,
                "gpu": {"name": "H100", "peak_tflops": 989, "memory_gb": 96,
                        "mfu": 0.5},
                "clusters": [{"nodes": 1, "nic": "roce"}],
                "nics": {"roce": {"gbps": 400, "efficiency": 0.8,
                                  "latency_us": 3, "compute_drag": 0.1}},
            }
        )
        assert topo.gpus_per_node == 4
        node = topo.node_of(0)
        assert node.gpu.name == "H100"
        assert node.rdma_nic.bandwidth == pytest.approx(gbps(400))
        assert node.rdma_nic.compute_drag == 0.1

    def test_ethernet_only_cluster(self):
        topo = topology_from_dict({"clusters": [{"nodes": 1, "nic": "ethernet"}]})
        assert topo.node_of(0).rdma_nic is None

    @pytest.mark.parametrize(
        "data",
        [
            {},
            {"clusters": []},
            {"clusters": [{"nodes": 0, "nic": "roce"}]},
            {"clusters": [{"nodes": 1, "nic": "token-ring"}]},
            {"clusters": [{"nodes": 1, "nic": "roce"}],
             "nics": {"warp": {"gbps": 1}}},
        ],
    )
    def test_invalid_machines_rejected(self, data):
        with pytest.raises(ConfigurationError):
            topology_from_dict(data)


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = make_topology(
            [(2, NICType.ROCE), (3, NICType.INFINIBAND)],
            inter_cluster_rdma=True,
        )
        restored = topology_from_dict(topology_to_dict(original))
        assert restored.world_size == original.world_size
        assert restored.inter_cluster_rdma == original.inter_cluster_rdma
        assert [c.nic_type for c in restored.clusters] == [
            c.nic_type for c in original.clusters
        ]
        assert (
            restored.node_of(0).rdma_nic.efficiency
            == original.node_of(0).rdma_nic.efficiency
        )

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "machine.json")
        original = make_topology([(2, NICType.INFINIBAND)])
        dump_topology(original, path)
        restored = load_topology(path)
        assert restored.world_size == original.world_size

    def test_fileobj_round_trip(self):
        original = make_topology([(1, NICType.ROCE)])
        buffer = io.StringIO()
        dump_topology(original, buffer)
        buffer.seek(0)
        restored = load_topology(buffer)
        assert restored.clusters[0].nic_type == NICType.ROCE

    def test_dump_is_valid_json(self, tmp_path):
        path = str(tmp_path / "m.json")
        dump_topology(make_topology([(1, NICType.ROCE)]), path)
        data = json.loads(open(path).read())
        assert data["clusters"][0]["nic"] == "roce"
        assert "roce" in data["nics"]


class TestCLIIntegration:
    def test_machine_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "machine.json")
        dump_topology(
            make_topology([(1, NICType.ROCE), (1, NICType.INFINIBAND)],
                          gpus_per_node=2),
            path,
        )
        assert main(["topology", "--machine", path]) == 0
        out = capsys.readouterr().out
        assert "2 cluster(s)" in out

    def test_topology_save(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "saved.json")
        assert main(["topology", "--nodes", "4", "--env", "hybrid",
                     "--save", path]) == 0
        data = json.loads(open(path).read())
        assert len(data["clusters"]) == 2
