"""Unit tests for the testbed presets and topology builders."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.nic import NICType
from repro.hardware.presets import (
    A100,
    ETH_25,
    GPUS_PER_NODE,
    IB_200,
    ROCE_200,
    homogeneous_topology,
    make_cluster,
    make_topology,
    nic_preset,
)
from repro.units import gbps, teraflops


class TestPresetValues:
    """Pin the paper-derived constants so calibration drift is visible."""

    def test_a100_peak(self):
        assert A100.peak_flops == teraflops(312)
        assert A100.memory_bytes == 80 * 1024**3

    def test_nic_bandwidths_match_table1(self):
        assert IB_200.bandwidth == gbps(200)
        assert ROCE_200.bandwidth == gbps(200)
        assert ETH_25.bandwidth == gbps(25)

    def test_roce_slower_than_ib_despite_equal_line_rate(self):
        """The paper's central RoCE observation (Table 1)."""
        assert ROCE_200.effective_bandwidth < IB_200.effective_bandwidth
        assert ROCE_200.compute_drag > IB_200.compute_drag

    def test_ethernet_slowest(self):
        assert ETH_25.effective_bandwidth < ROCE_200.effective_bandwidth

    def test_gpus_per_node_is_eight(self):
        assert GPUS_PER_NODE == 8

    def test_nic_preset_lookup(self):
        assert nic_preset(NICType.INFINIBAND) is IB_200
        assert nic_preset(NICType.ROCE) is ROCE_200
        assert nic_preset(NICType.ETHERNET) is ETH_25


class TestBuilders:
    def test_homogeneous_topology_case1(self):
        topo = homogeneous_topology(4, NICType.INFINIBAND)
        assert topo.world_size == 32
        assert topo.inter_cluster_rdma
        assert topo.num_clusters == 1

    def test_make_topology_multi_cluster(self):
        topo = make_topology([(2, NICType.ROCE), (2, NICType.INFINIBAND)])
        assert topo.num_clusters == 2
        assert not topo.inter_cluster_rdma
        assert topo.clusters[0].nic_type == NICType.ROCE
        assert topo.clusters[1].nic_type == NICType.INFINIBAND

    def test_node_ids_are_globally_unique(self):
        topo = make_topology([(2, NICType.ROCE), (3, NICType.INFINIBAND)])
        ids = [topo._nodes[i].node_id for i in range(topo.num_nodes)]
        assert ids == list(range(5))

    def test_empty_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            make_topology([])

    def test_zero_node_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            make_cluster(0, 0, NICType.ROCE)

    def test_custom_gpus_per_node(self):
        topo = homogeneous_topology(2, NICType.ROCE, gpus_per_node=4)
        assert topo.world_size == 8
        assert topo.gpus_per_node == 4
