"""Unit tests for Node and Cluster construction rules."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.hardware.cluster import Cluster
from repro.hardware.nic import NICType
from repro.hardware.presets import ETH_25, IB_200, make_node


class TestNode:
    def test_rdma_node_prefers_rdma(self):
        node = make_node(0, NICType.INFINIBAND)
        assert node.nic_type == NICType.INFINIBAND
        assert node.best_nic is node.rdma_nic

    def test_ethernet_node_has_no_rdma(self):
        node = make_node(0, NICType.ETHERNET)
        assert node.rdma_nic is None
        assert node.nic_type == NICType.ETHERNET
        assert node.best_nic is node.ethernet_nic

    def test_nic_for_ethernet_always_available(self):
        node = make_node(0, NICType.ROCE)
        assert node.nic_for(NICType.ETHERNET) is node.ethernet_nic

    def test_nic_for_matching_rdma(self):
        node = make_node(0, NICType.ROCE)
        assert node.nic_for(NICType.ROCE) is node.rdma_nic

    def test_nic_for_missing_family_raises(self):
        node = make_node(0, NICType.ROCE)
        with pytest.raises(ConfigurationError):
            node.nic_for(NICType.INFINIBAND)

    def test_invalid_gpu_count_rejected(self):
        with pytest.raises(ConfigurationError):
            make_node(0, NICType.INFINIBAND, gpus_per_node=0)

    def test_ethernet_slot_must_hold_ethernet(self):
        from repro.hardware.node import Node
        from repro.hardware.presets import A100

        with pytest.raises(ConfigurationError):
            Node(0, A100, 8, ethernet_nic=IB_200)

    def test_rdma_slot_rejects_ethernet(self):
        from repro.hardware.node import Node
        from repro.hardware.presets import A100

        with pytest.raises(ConfigurationError):
            Node(0, A100, 8, ethernet_nic=ETH_25, rdma_nic=ETH_25)


class TestCluster:
    def test_homogeneous_cluster(self):
        nodes = tuple(make_node(i, NICType.ROCE) for i in range(3))
        cluster = Cluster(0, nodes)
        assert cluster.nic_type == NICType.ROCE
        assert cluster.num_nodes == 3
        assert cluster.num_gpus == 24

    def test_mixed_families_rejected(self):
        nodes = (make_node(0, NICType.ROCE), make_node(1, NICType.INFINIBAND))
        with pytest.raises(TopologyError, match="mixes NIC families"):
            Cluster(0, nodes)

    def test_mixed_gpu_counts_rejected(self):
        nodes = (
            make_node(0, NICType.ROCE, gpus_per_node=8),
            make_node(1, NICType.ROCE, gpus_per_node=4),
        )
        with pytest.raises(TopologyError, match="GPU counts"):
            Cluster(0, nodes)

    def test_empty_cluster_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(0, ())

    def test_default_name(self):
        cluster = Cluster(2, (make_node(0, NICType.INFINIBAND),))
        assert "cluster2" in cluster.name
        assert "infiniband" in cluster.name
