"""Unit tests for NIC specs and the RDMA compatibility rule."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.nic import NICSpec, NICType, rdma_compatible
from repro.units import gbps, microseconds


class TestNICType:
    def test_rdma_families(self):
        assert NICType.INFINIBAND.is_rdma
        assert NICType.ROCE.is_rdma
        assert not NICType.ETHERNET.is_rdma

    def test_str(self):
        assert str(NICType.ROCE) == "roce"


class TestNICSpec:
    def test_effective_bandwidth(self):
        nic = NICSpec(NICType.INFINIBAND, gbps(200), microseconds(2), 0.9)
        assert nic.effective_bandwidth == pytest.approx(200e9 / 8 * 0.9)

    def test_transfer_time_includes_latency(self):
        nic = NICSpec(NICType.ETHERNET, bandwidth=1e9, latency=1e-3, efficiency=1.0)
        assert nic.transfer_time(1_000_000) == pytest.approx(1e-3 + 1e-3)

    def test_transfer_time_zero_bytes_is_latency(self):
        nic = NICSpec(NICType.ETHERNET, bandwidth=1e9, latency=5e-6)
        assert nic.transfer_time(0) == pytest.approx(5e-6)

    def test_negative_transfer_rejected(self):
        nic = NICSpec(NICType.ETHERNET, bandwidth=1e9, latency=0.0)
        with pytest.raises(ConfigurationError):
            nic.transfer_time(-1)

    def test_with_efficiency_returns_copy(self):
        nic = NICSpec(NICType.ROCE, gbps(200), 0.0, efficiency=0.5)
        faster = nic.with_efficiency(0.9)
        assert faster.efficiency == 0.9
        assert nic.efficiency == 0.5  # original unchanged

    def test_default_name_from_type(self):
        nic = NICSpec(NICType.ROCE, 1e9, 0.0)
        assert nic.name == "roce"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(bandwidth=0.0, latency=0.0),
            dict(bandwidth=-1.0, latency=0.0),
            dict(bandwidth=1e9, latency=-1e-6),
            dict(bandwidth=1e9, latency=0.0, efficiency=0.0),
            dict(bandwidth=1e9, latency=0.0, efficiency=1.5),
            dict(bandwidth=1e9, latency=0.0, compute_drag=-0.1),
            dict(bandwidth=1e9, latency=0.0, compute_drag=1.0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            NICSpec(NICType.ETHERNET, **kwargs)


class TestRDMACompatibility:
    """The incompatibility rule at the heart of the paper (S1, S2.1.2)."""

    def test_same_rdma_family_compatible(self):
        assert rdma_compatible(NICType.INFINIBAND, NICType.INFINIBAND)
        assert rdma_compatible(NICType.ROCE, NICType.ROCE)

    def test_ib_and_roce_incompatible(self):
        assert not rdma_compatible(NICType.INFINIBAND, NICType.ROCE)
        assert not rdma_compatible(NICType.ROCE, NICType.INFINIBAND)

    def test_ethernet_never_rdma(self):
        assert not rdma_compatible(NICType.ETHERNET, NICType.ETHERNET)
        assert not rdma_compatible(NICType.ETHERNET, NICType.INFINIBAND)
