"""Flight recorder x executor integration: the event log narrates a sweep
truthfully, never changes a result byte, and costs ~nothing when off.

Worker functions live at module level so they pickle into pool workers
(same discipline as ``test_resilience.py``).
"""

import threading
import time

from repro.api import Scenario, sweep
from repro.exec import SweepOutcome, pmap, run_sweep
from repro.exec.journal import SweepJournal, sweep_digest
from repro.obs.flight import (
    events_path_for,
    read_events,
    scenario_story,
    summarize_events,
)


def tiny(**overrides):
    base = dict(
        env="ib", nodes=2, gpus_per_node=2, num_layers=4, hidden_size=256,
        num_attention_heads=4, seq_length=128, vocab_size=1024,
        pipeline=2, micro_batch_size=1, num_microbatches=2,
    )
    base.update(overrides)
    return Scenario(**base)


def _square(x):
    return x * x


def _fail_on_13(x):
    if x == 13:
        raise ValueError("unlucky")
    return x * x


SCENARIOS = [tiny(label=f"f{i:02d}") for i in range(8)]


# --------------------------------------------------------------------- #
# the byte-identity contract: recording must be invisible to results
# --------------------------------------------------------------------- #


def test_digests_identical_with_recording_on_vs_off(tmp_path):
    plain = sweep(SCENARIOS, jobs=2)
    recorded = sweep(
        SCENARIOS, jobs=2, events=tmp_path / "ev.jsonl",
        progress=False, ledger=tmp_path / "ledger.jsonl",
    )
    assert [r.trace_digest for r in plain] == [
        r.trace_digest for r in recorded
    ]
    assert plain == recorded


def test_recording_does_not_touch_serial_results(tmp_path):
    plain = sweep(SCENARIOS, jobs=1)
    recorded = sweep(SCENARIOS, jobs=1, events=tmp_path / "ev.jsonl")
    assert plain == recorded


# --------------------------------------------------------------------- #
# event-log content for healthy, cached, and failing sweeps
# --------------------------------------------------------------------- #


def test_event_log_narrates_a_parallel_sweep(tmp_path):
    path = tmp_path / "ev.jsonl"
    sweep(SCENARIOS, jobs=2, events=path)
    events = read_events(path)
    counts = summarize_events(events)
    n = len(SCENARIOS)
    assert counts["sweep-begin"] == 1
    assert counts["sweep-end"] == 1
    assert counts["cache-miss"] == n
    assert counts["scenario-dispatched"] == n
    assert counts["scenario-started"] == n
    assert counts["scenario-finished"] == n
    assert counts["worker-spawn"] == 2
    begin = next(e for e in events if e["event"] == "sweep-begin")
    assert begin["total"] == n
    assert begin["jobs"] == 2
    assert begin["sweep_digest"] == sweep_digest(
        s.digest() for s in SCENARIOS
    )
    # per-scenario story: dispatched -> started -> finished, with timing
    for scenario in SCENARIOS:
        story = scenario_story(events, scenario.digest())
        kinds = [e["event"] for e in story]
        assert kinds == [
            "cache-miss", "scenario-dispatched", "scenario-started",
            "scenario-finished",
        ]
        assert story[-1]["seconds"] > 0


def test_event_log_records_cache_hits(tmp_path):
    cache = tmp_path / "cache"
    sweep(SCENARIOS, jobs=1, cache=cache)
    path = tmp_path / "ev.jsonl"
    sweep(SCENARIOS, jobs=1, cache=cache, events=path)
    counts = summarize_events(read_events(path))
    assert counts["cache-hit"] == len(SCENARIOS)
    assert "scenario-dispatched" not in counts
    assert counts["sweep-end"] == 1


def test_events_default_on_iff_journaling(tmp_path):
    # no journal, events=None -> no event log anywhere under tmp_path
    sweep(SCENARIOS[:2], jobs=1)
    # journaled: the event log rides alongside the journal automatically
    sweep(SCENARIOS[:2], jobs=1, resume=True, journal=tmp_path)
    digests = [s.digest() for s in SCENARIOS[:2]]
    journal = SweepJournal.for_sweep(tmp_path, digests)
    events_path = events_path_for(journal.path)
    assert events_path.exists()
    counts = summarize_events(read_events(events_path))
    assert counts["scenario-finished"] == 2
    # a resumed re-run appends journal-replay events to the same log
    sweep(SCENARIOS[:2], jobs=1, resume=True, journal=tmp_path)
    counts = summarize_events(read_events(events_path))
    assert counts["journal-replay"] == 2
    assert counts["sweep-begin"] == 2


def test_events_false_suppresses_recording_even_with_journal(tmp_path):
    sweep(SCENARIOS[:2], jobs=1, resume=True, journal=tmp_path,
          events=False)
    digests = [s.digest() for s in SCENARIOS[:2]]
    journal = SweepJournal.for_sweep(tmp_path, digests)
    assert journal.path.exists()
    assert not events_path_for(journal.path).exists()


def test_quarantine_story_via_pmap(tmp_path):
    """Every quarantined failure has matching retried/quarantined events
    (the chaos suite asserts the same over real scenario digests)."""
    from repro.exec.engine import _build_flight

    flight = _build_flight(
        events=tmp_path / "ev.jsonl", progress=False, textfile=None,
        jrnl=None, store=None, digests=[],
    )
    from repro.exec.resilience import SweepPolicy, resilient_map

    items = [(i, v, f"digest-{v}", f"item{i}") for i, v in
             enumerate([1, 13, 2, 3])]
    _, failures, stats = resilient_map(
        _fail_on_13, items, jobs=2,
        policy=SweepPolicy(retries=1, backoff=0.0, on_error="collect"),
        flight=flight,
    )
    flight.close()
    assert len(failures) == 1
    events = read_events(tmp_path / "ev.jsonl")
    story = scenario_story(events, "digest-13")
    kinds = [e["event"] for e in story]
    assert kinds.count("scenario-dispatched") == 2  # initial + retry
    assert kinds.count("scenario-retried") == 1
    assert kinds.count("scenario-quarantined") == 1
    quarantined = story[-1]
    assert quarantined["event"] == "scenario-quarantined"
    assert quarantined["kind"] == "error"
    assert quarantined["attempts"] == 2
    # healthy items: no retry/quarantine events
    for v in (1, 2, 3):
        healthy = [e["event"] for e in scenario_story(events, f"digest-{v}")]
        assert "scenario-retried" not in healthy
        assert "scenario-quarantined" not in healthy


# --------------------------------------------------------------------- #
# ledger integration
# --------------------------------------------------------------------- #


def test_sweep_records_a_ledger_run(tmp_path):
    from repro.obs.ledger import RunLedger

    ledger_path = tmp_path / "ledger.jsonl"
    cache = tmp_path / "cache"
    sweep(SCENARIOS[:3], jobs=1, cache=cache, ledger=ledger_path)
    sweep(SCENARIOS[:3], jobs=1, cache=cache, ledger=ledger_path)
    records = RunLedger(ledger_path).records()
    assert len(records) == 2
    assert records[0].kind == "sweep"
    assert records[0].outcome == "ok"
    assert records[0].counts["executed"] == 3
    assert records[1].counts["cache_hits"] == 3
    assert records[0].sweep_digest == records[1].sweep_digest
    assert records[0].code_salt


def test_partial_sweep_ledger_outcome(tmp_path):
    from repro.obs.ledger import RunLedger

    ledger_path = tmp_path / "ledger.jsonl"
    outcome = run_sweep(
        [tiny(label="ok"), tiny(label="bad", num_layers=-1)],
        jobs=1, on_error="collect", retries=0, ledger=ledger_path,
    )
    assert isinstance(outcome, SweepOutcome)
    assert len(outcome.failures) == 1
    records = RunLedger(ledger_path).records()
    assert records[-1].outcome == "partial"
    assert records[-1].counts["quarantined"] == 1


# --------------------------------------------------------------------- #
# live tail: reading journal + event log while a sweep appends
# --------------------------------------------------------------------- #


def test_tail_journal_and_events_during_live_sweep(tmp_path):
    """Satellite: concurrent readers see only whole records while a live
    sweep appends — journal replay and event parsing never corrupt."""
    scenarios = [tiny(label=f"live{i:02d}") for i in range(10)]
    digests = [s.digest() for s in scenarios]
    journal = SweepJournal.for_sweep(tmp_path, digests)
    events_path = events_path_for(journal.path)

    snapshots = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            progress = SweepJournal(journal.path).progress()
            replayed = SweepJournal(journal.path).replay()
            events = read_events(events_path)
            snapshots.append((progress, len(replayed), len(events)))
            time.sleep(0.005)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        results = sweep(scenarios, jobs=2, resume=True, journal=tmp_path)
    finally:
        stop.set()
        thread.join()
    assert len(results) == 10
    # the reader observed monotonically growing, never-corrupt state
    assert snapshots
    ok_counts = [p["ok"] for p, _, _ in snapshots]
    assert ok_counts == sorted(ok_counts)
    assert all(replayed <= 10 for _, replayed, _ in snapshots)
    final = SweepJournal(journal.path).progress()
    assert final["ok"] == 10
    assert final["distinct_ok"] == 10
    assert final["corrupt"] == 0
    counts = summarize_events(read_events(events_path))
    assert counts["scenario-finished"] == 10


def test_journal_progress_tolerates_truncated_tail(tmp_path):
    scenarios = [tiny(label="t0"), tiny(label="t1")]
    digests = [s.digest() for s in scenarios]
    sweep(scenarios, jobs=1, resume=True, journal=tmp_path)
    journal = SweepJournal.for_sweep(tmp_path, digests)
    raw = journal.path.read_text()
    # simulate a writer killed mid-line
    journal.path.write_text(raw + raw.splitlines()[0][: len(raw) // 4])
    progress = journal.progress()
    assert progress["ok"] == 2
    assert progress["corrupt"] == 1  # the unterminated tail
    assert journal.replay()  # replay still reconstructs both results


# --------------------------------------------------------------------- #
# disabled-recorder overhead budget
# --------------------------------------------------------------------- #


def _min_wall(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_flight_guard_overhead_under_2_percent():
    """With no telemetry surface enabled the executor pays one
    ``flight is not None`` guard per event site.  Time the guards a full
    sweep's worth of events would evaluate against the sweep's own wall
    clock: the budget is <2% (mirrors the validation-hooks overhead
    test; min-of-N keeps it stable on noisy CI machines).
    """
    scenarios = SCENARIOS[:4]
    sweep(scenarios, jobs=1)  # warm imports/caches outside the timing

    sweep_wall = _min_wall(lambda: sweep(scenarios, jobs=1))

    # Guard sites per scenario on the inline path: cache check, dispatch,
    # success; plus begin/end sites.  Over-count generously (x4) so the
    # budget holds even if future emit sites are added.
    num_guards = 4 * (3 * len(scenarios) + 4)
    flight = None

    def guards():
        sink = False
        for _ in range(num_guards):
            sink = flight is not None
        return sink

    guard_wall = _min_wall(guards, rounds=5)
    overhead = guard_wall / sweep_wall
    assert overhead < 0.02, (
        f"disabled-recorder guards cost {overhead:.1%} of a sweep "
        f"({num_guards} guards, {guard_wall * 1e3:.3f}ms vs "
        f"{sweep_wall * 1e3:.1f}ms)"
    )


def test_pmap_progress_smoke(capsys):
    """pmap(progress=True) renders at least a final status line and does
    not disturb results."""
    items = list(range(6))
    assert pmap(_square, items, jobs=2, progress=True) == [
        i * i for i in items
    ]
    err = capsys.readouterr().err
    assert "sweep 6/6" in err
    assert "done" in err
