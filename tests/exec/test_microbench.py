"""Microbenchmark suite: schema, normalization, regression gate."""

import copy

from repro.exec import MICROBENCHES, check_regression, run_microbenches
from repro.exec.microbench import SCHEMA


def small_doc():
    # the cheap benches only, single repeat, to keep the test fast
    return run_microbenches(
        names=["costmodel", "metrics-bound"], repeats=1
    )


def test_document_schema_and_normalization():
    doc = small_doc()
    assert doc["schema"] == SCHEMA
    benches = doc["benchmarks"]
    # calibration is always measured: it is the normalization divisor
    assert "calibration" in benches
    assert benches["calibration"]["normalized"] == 1.0
    for name in ("costmodel", "metrics-bound"):
        entry = benches[name]
        assert entry["ns_per_op"] > 0
        assert entry["ops"] > 0
        assert entry["normalized"] > 0


def test_registry_names_are_runnable():
    assert "calibration" in MICROBENCHES
    assert set(run_microbenches(repeats=1)["benchmarks"]) == set(MICROBENCHES)


def test_gate_passes_against_itself():
    doc = small_doc()
    assert check_regression(doc, doc, tolerance=0.10) == []


def test_gate_flags_normalized_slowdown():
    doc = small_doc()
    reference = copy.deepcopy(doc)
    # pretend the reference ran 2x faster (normalized)
    ref_entry = reference["benchmarks"]["costmodel"]
    ref_entry["normalized"] = doc["benchmarks"]["costmodel"]["normalized"] / 2
    regressions = check_regression(doc, reference, tolerance=0.10)
    assert [r.name for r in regressions] == ["costmodel"]
    assert "costmodel" in regressions[0].describe()


def test_gate_ignores_calibration_and_new_benches():
    doc = small_doc()
    reference = copy.deepcopy(doc)
    # calibration is the divisor, never gated
    reference["benchmarks"]["calibration"]["normalized"] = 1e-9
    # benches absent from the reference are skipped, not failed
    del reference["benchmarks"]["metrics-bound"]
    assert check_regression(doc, reference, tolerance=0.10) == []
