"""Chaos suite: the ISSUE acceptance scenarios, end to end.

Every test here runs real sweeps through the supervised pool with seeded
executor faults injected by :mod:`repro.exec.chaos` — worker SIGKILLs,
hung scenarios cleared by wall-clock timeouts, corrupted cache entries,
and supervisor interrupts with journaled resume.  The whole file carries
the ``chaos`` marker so CI can run it as its own hard-timeout job.
"""

import os
import shutil
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import Scenario, sweep
from repro.errors import ConfigurationError
from repro.exec import ResultCache, SweepJournal, SweepOutcome, sweep_digest
from repro.exec.chaos import ChaosError, ChaosPlan, corrupt_cache_entry, maybe_inject
from repro.obs.flight import read_events, scenario_story, summarize_events

pytestmark = pytest.mark.chaos


def tiny(**overrides):
    kw = dict(
        env="ib", nodes=2, gpus_per_node=2,
        num_layers=4, hidden_size=256, num_attention_heads=4,
        seq_length=128, vocab_size=1024,
        pipeline=2, micro_batch_size=1, num_microbatches=2,
    )
    kw.update(overrides)
    return Scenario(**kw)


SCENARIOS = [tiny(label=f"s{i:02d}") for i in range(32)]
DIGESTS = [s.digest() for s in SCENARIOS]


@pytest.fixture(scope="module")
def serial_baseline():
    """The undisturbed jobs=1 sweep every chaos run must reproduce."""
    return sweep(SCENARIOS, jobs=1)


# --------------------------------------------------------------------- #
# plan mechanics
# --------------------------------------------------------------------- #


def test_plan_validation():
    with pytest.raises(ConfigurationError):
        ChaosPlan(crash_once=("d" * 64,))  # no state_dir for markers
    with pytest.raises(ConfigurationError):
        ChaosPlan(hang=(("d" * 64, 0.0),))
    with pytest.raises(ConfigurationError):
        ChaosPlan(interrupt_after=0)


def test_plan_json_roundtrip(tmp_path):
    plan = ChaosPlan(
        crash_once=(DIGESTS[0],),
        hang=((DIGESTS[1], 30.0),),
        poison=(DIGESTS[2],),
        interrupt_after=5,
        state_dir=str(tmp_path),
    )
    assert ChaosPlan.from_json(plan.to_json()) == plan
    assert "crash_once=1" in plan.describe()


def test_random_plan_is_seeded_and_disjoint(tmp_path):
    plan = ChaosPlan.random(DIGESTS, seed=7, state_dir=str(tmp_path))
    again = ChaosPlan.random(DIGESTS, seed=7, state_dir=str(tmp_path))
    assert plan == again
    assert ChaosPlan.random(DIGESTS, seed=8, state_dir=str(tmp_path)) != plan
    victims = (
        set(plan.crash_once)
        | {d for d, _ in plan.hang}
        | set(plan.poison)
    )
    assert len(victims) == 3  # disjoint picks
    with pytest.raises(ConfigurationError):
        ChaosPlan.random(DIGESTS[:2], seed=0, state_dir=str(tmp_path))


def test_poison_raises_inline_but_crash_and_hang_do_not(tmp_path):
    """Process-killing injections must never fire in the caller's own
    process — only poison (a plain exception) applies inline."""
    plan = ChaosPlan(
        crash_once=(DIGESTS[0],),
        hang=((DIGESTS[1], 30.0),),
        poison=(DIGESTS[2],),
        state_dir=str(tmp_path),
    )
    with plan.installed():
        maybe_inject(DIGESTS[0])  # would SIGKILL a pool worker; no-op here
        maybe_inject(DIGESTS[1])  # would sleep 30s in a pool worker
        with pytest.raises(ChaosError):
            maybe_inject(DIGESTS[2])
    maybe_inject(DIGESTS[2])  # plan uninstalled: nothing injects


# --------------------------------------------------------------------- #
# the acceptance sweep: crash + hang + corrupt cache under jobs=4
# --------------------------------------------------------------------- #


def test_chaotic_sweep_quarantines_only_the_hung_scenario(
    tmp_path, serial_baseline
):
    """ISSUE acceptance: 32 scenarios, jobs=4, one worker SIGKILL, one hang
    past its timeout, one corrupted cache entry.  The sweep must return 31
    results byte-identical to the serial baseline with exactly the hung
    scenario quarantined, and the corrupt entry must be quarantined on disk
    and transparently re-executed."""
    crash_idx, hang_idx, corrupt_idx = 5, 11, 23
    cache = ResultCache(tmp_path / "cache")
    # pre-populate then damage one entry: the sweep must not trust it
    cache.put(SCENARIOS[corrupt_idx], serial_baseline[corrupt_idx])
    corrupt_cache_entry(cache, SCENARIOS[corrupt_idx], mode="truncate")

    plan = ChaosPlan(
        crash_once=(DIGESTS[crash_idx],),
        hang=((DIGESTS[hang_idx], 30.0),),
        state_dir=str(tmp_path / "chaos-state"),
    )
    with plan.installed():
        outcome = sweep(
            SCENARIOS, jobs=4, cache=cache,
            timeout=2.0, retries=1, on_error="collect",
        )

    assert isinstance(outcome, SweepOutcome)
    assert len(outcome) == 32
    # exactly the hung scenario is quarantined...
    assert outcome.failed_indices() == [hang_idx]
    failure = outcome.failures[0]
    assert failure.kind == "timeout"
    assert failure.digest == DIGESTS[hang_idx]
    assert failure.attempts == 2  # first try + 1 retry, both timed out
    # ...and the other 31 results are byte-identical to the serial sweep
    completed = outcome.completed()
    assert len(completed) == 31
    for index, result in enumerate(outcome.results):
        if index == hang_idx:
            assert result is None
        else:
            assert result == serial_baseline[index]
            assert result.trace_digest == serial_baseline[index].trace_digest
    # the SIGKILLed worker cost one retry, not the sweep
    assert outcome.stats["worker_crashes"] == 1
    assert outcome.stats["worker_respawns"] >= 1
    # the damaged cache entry was quarantined on disk and re-executed
    assert cache.stats()["corrupt"] == 1
    entry = cache.path_for(DIGESTS[corrupt_idx])
    assert (entry.parent / (entry.name + ".corrupt")).exists()
    assert cache.get(SCENARIOS[corrupt_idx]) == serial_baseline[corrupt_idx]


# --------------------------------------------------------------------- #
# interrupt + resume: the journal picks up exactly where the sweep died
# --------------------------------------------------------------------- #


def test_interrupted_sweep_resumes_byte_identically(tmp_path, serial_baseline):
    """ISSUE acceptance: an interrupted jobs=4 sweep resumed with
    ``resume=True`` re-executes only unjournaled scenarios and matches the
    uninterrupted serial digests."""
    plan = ChaosPlan(interrupt_after=3)
    with plan.installed():
        with pytest.raises(KeyboardInterrupt):
            sweep(SCENARIOS, jobs=4, resume=True, journal=tmp_path)

    journal = SweepJournal.for_sweep(tmp_path, DIGESTS)
    assert journal.path.exists()
    survived = journal.replay()
    assert len(survived) == 3  # everything completed before the interrupt
    for digest, result in survived.items():
        assert result == serial_baseline[DIGESTS.index(digest)]

    # resume: replay the journaled 3, execute the remaining 29
    outcome = sweep(
        SCENARIOS, jobs=4, resume=True, journal=tmp_path, on_error="collect",
    )
    assert outcome.failures == []
    assert outcome.stats["journal_replayed"] == 3
    assert outcome.stats["executed"] == 29
    assert list(outcome) == serial_baseline
    assert [r.trace_digest for r in outcome] == [
        r.trace_digest for r in serial_baseline
    ]


def test_resume_after_completion_is_pure_replay(tmp_path):
    scenarios = SCENARIOS[:6]
    first = sweep(scenarios, jobs=2, resume=True, journal=tmp_path)
    again = sweep(
        scenarios, jobs=2, resume=True, journal=tmp_path, on_error="collect",
    )
    assert again.stats["journal_replayed"] == 6
    assert again.stats["executed"] == 0
    assert list(again) == first


def _export_chaos_artifact(events_path):
    """Copy the event log into ``REPRO_CHAOS_EVENTS_DIR`` when CI asks for
    it (the chaos job uploads that directory as a build artifact)."""
    art_dir = os.environ.get("REPRO_CHAOS_EVENTS_DIR")
    if art_dir:
        dest = Path(art_dir)
        dest.mkdir(parents=True, exist_ok=True)
        shutil.copy(events_path, dest / "chaos-acceptance.events.jsonl")


def test_flight_recorder_reconstructs_the_chaos_story(
    tmp_path, serial_baseline
):
    """ISSUE acceptance: with the flight recorder enabled, a chaotic jobs=4
    sweep (one worker SIGKILL, one hang cleared by timeout) still returns
    results byte-identical to the serial baseline, and the event log
    reconstructs the full retry/respawn/quarantine story — every
    ``ScenarioFailure`` in the outcome has matching events."""
    crash_idx, hang_idx = 5, 11
    events_path = tmp_path / "chaos.events.jsonl"
    plan = ChaosPlan(
        crash_once=(DIGESTS[crash_idx],),
        hang=((DIGESTS[hang_idx], 30.0),),
        state_dir=str(tmp_path / "chaos-state"),
    )
    with plan.installed():
        outcome = sweep(
            SCENARIOS, jobs=4, timeout=2.0, retries=1, on_error="collect",
            events=events_path,
        )

    # recording on: same quarantine verdict, byte-identical survivors
    assert outcome.failed_indices() == [hang_idx]
    for index, result in enumerate(outcome.results):
        if index != hang_idx:
            assert result.trace_digest == serial_baseline[index].trace_digest

    events = read_events(events_path)
    counts = summarize_events(events)
    assert counts["sweep-begin"] == 1
    assert counts["sweep-end"] == 1
    assert counts["worker-spawn"] >= 4
    assert counts["worker-respawn"] == outcome.stats["worker_respawns"]
    assert counts["worker-crash"] == outcome.stats["worker_crashes"] == 1
    assert counts["scenario-timed-out"] == outcome.stats["timeouts"]
    assert counts["scenario-quarantined"] == len(outcome.failures) == 1

    # every quarantined failure has a matching event narrative
    for failure in outcome.failures:
        story = scenario_story(events, failure.digest)
        kinds = [e["event"] for e in story]
        assert kinds.count("scenario-dispatched") == failure.attempts
        assert kinds.count("scenario-timed-out") == failure.attempts
        assert kinds.count("scenario-retried") == failure.attempts - 1
        quarantined = story[-1]
        assert quarantined["event"] == "scenario-quarantined"
        assert quarantined["kind"] == failure.kind
        assert quarantined["attempts"] == failure.attempts
        assert quarantined["index"] == failure.index

    # the SIGKILLed worker's scenario: crash, retry, then clean finish
    crash_story = [
        e["event"] for e in scenario_story(events, DIGESTS[crash_idx])
    ]
    assert "worker-crash" in crash_story
    assert "scenario-retried" in crash_story
    assert crash_story.count("scenario-finished") == 1
    _export_chaos_artifact(events_path)


def test_repro_tail_follows_a_running_j4_sweep(tmp_path):
    """ISSUE acceptance: ``repro tail -f`` attached to the event log of a
    running ``jobs=4`` sweep renders live progress and exits on its own
    when the sweep finishes."""
    events_path = tmp_path / "live.events.jsonl"
    hang_idx = 7
    plan = ChaosPlan(
        hang=((DIGESTS[hang_idx], 30.0),),
        state_dir=str(tmp_path / "chaos-state"),
    )
    done: dict = {}

    def run():
        with plan.installed():
            done["outcome"] = sweep(
                SCENARIOS, jobs=4, timeout=1.5, retries=1,
                on_error="collect", events=events_path,
            )

    sweeper = threading.Thread(target=run)
    sweeper.start()
    try:
        deadline = time.monotonic() + 10.0
        while not events_path.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert events_path.exists(), "sweep never opened its event log"
        root = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "tail", str(events_path),
             "--follow", "--interval", "0.1", "--max-seconds", "30"],
            capture_output=True, text=True, timeout=60, env=env,
            cwd=str(root),
        )
    finally:
        sweeper.join()
    assert proc.returncode == 0, proc.stderr
    assert "event log" in proc.stdout
    # live progress lines, a terminal "done" render, and the worker table
    assert "sweep " in proc.stdout
    assert "done" in proc.stdout
    assert "worker " in proc.stdout
    outcome = done["outcome"]
    assert outcome.failed_indices() == [hang_idx]
    final_counts = summarize_events(read_events(events_path))
    assert final_counts["sweep-end"] == 1


def test_repro_tail_renders_a_finished_journal(tmp_path):
    """``repro tail`` against a finished journal reports its outcome tally
    without following."""
    scenarios = SCENARIOS[:6]
    sweep(scenarios, jobs=2, resume=True, journal=tmp_path)
    journal = SweepJournal.for_sweep(
        tmp_path, [s.digest() for s in scenarios]
    )
    root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "tail", str(journal.path)],
        capture_output=True, text=True, timeout=60, env=env, cwd=str(root),
    )
    assert proc.returncode == 0, proc.stderr
    assert "6 ok (6 distinct scenarios)" in proc.stdout


def test_journal_is_order_insensitive(tmp_path):
    scenarios = SCENARIOS[:6]
    sweep(scenarios, jobs=1, resume=True, journal=tmp_path)
    # the same batch, reordered, resumes the same journal (same sweep digest)
    reordered = scenarios[::-1]
    outcome = sweep(
        reordered, jobs=1, resume=True, journal=tmp_path, on_error="collect",
    )
    assert outcome.stats["journal_replayed"] == 6
    assert [r.scenario for r in outcome] == [s.label for s in reordered]
    assert sweep_digest(s.digest() for s in scenarios) == sweep_digest(
        s.digest() for s in reordered
    )
