"""Parallel sweep determinism: worker partitioning and serial equality."""

import pytest

from repro.api import Scenario, sweep
from repro.errors import ConfigurationError
from repro.exec import ResultCache, partition, pmap, resolve_jobs


def tiny(**overrides):
    kw = dict(
        env="ib", nodes=2, gpus_per_node=2,
        num_layers=4, hidden_size=256, num_attention_heads=4,
        seq_length=128, vocab_size=1024,
        pipeline=2, micro_batch_size=1, num_microbatches=2,
    )
    kw.update(overrides)
    return Scenario(**kw)


SCENARIOS = [
    tiny(label="a"),
    tiny(env="roce", label="b"),
    tiny(env="hybrid", label="c"),
    tiny(env="ethernet", label="d"),
    tiny(nodes=4, pipeline=2, label="e"),
    tiny(fault_seed=3, fault_count=2, label="f"),
]


def test_partition_is_deterministic_and_covers():
    for count in (0, 1, 5, 6, 17):
        for jobs in (1, 2, 4, 8):
            chunks = partition(count, jobs)
            assert chunks == partition(count, jobs)  # pure function
            flat = sorted(i for chunk in chunks for i in chunk)
            assert flat == list(range(count))  # exact cover
    # round-robin: worker w owns indices w, w+jobs, ...
    assert partition(7, 3) == [[0, 3, 6], [1, 4], [2, 5]]


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1
    with pytest.raises(ConfigurationError):
        resolve_jobs(-1)


def test_parallel_sweep_equals_serial():
    serial = sweep(SCENARIOS, jobs=1)
    parallel = sweep(SCENARIOS, jobs=4)
    # same order, same digests, same everything
    assert [r.scenario for r in serial] == [s.label for s in SCENARIOS]
    assert [r.trace_digest for r in parallel] == [r.trace_digest for r in serial]
    assert parallel == serial


def test_parallel_sweep_with_cache_equals_serial(tmp_path):
    serial = sweep(SCENARIOS, jobs=1)
    cache = ResultCache(tmp_path)
    cold = sweep(SCENARIOS, jobs=4, cache=cache)
    warm = sweep(SCENARIOS, jobs=4, cache=cache)
    assert cold == serial
    assert warm == serial
    assert cache.hits == len(SCENARIOS)


def test_partial_cache_hits_preserve_order(tmp_path):
    cache = ResultCache(tmp_path)
    sweep(SCENARIOS[::2], cache=cache)  # pre-warm every other scenario
    mixed = sweep(SCENARIOS, jobs=2, cache=cache)
    assert mixed == sweep(SCENARIOS, jobs=1)


def test_pmap_preserves_order():
    items = list(range(20))
    assert pmap(_square, items, jobs=1) == [i * i for i in items]
    assert pmap(_square, items, jobs=4) == [i * i for i in items]


def _square(x):
    return x * x
