"""Sweep journal: content addressing, crash-tolerant replay, durability."""

import json

from repro.api import Scenario, run
from repro.exec import ScenarioFailure, SweepJournal, sweep_digest
from repro.exec.journal import SCHEMA


def tiny(**overrides):
    kw = dict(
        env="ib", nodes=2, gpus_per_node=2,
        num_layers=4, hidden_size=256, num_attention_heads=4,
        seq_length=128, vocab_size=1024,
        pipeline=2, micro_batch_size=1, num_microbatches=2,
    )
    kw.update(overrides)
    return Scenario(**kw)


def test_sweep_digest_is_order_insensitive_and_set_valued():
    digests = ["a" * 64, "b" * 64, "c" * 64]
    assert sweep_digest(digests) == sweep_digest(reversed(digests))
    assert sweep_digest(digests) == sweep_digest(digests + digests)
    assert sweep_digest(digests) != sweep_digest(digests[:2])


def test_for_sweep_layout(tmp_path):
    digests = ["a" * 64, "b" * 64]
    journal = SweepJournal.for_sweep(tmp_path, digests)
    assert journal.path == (
        tmp_path / "journal" / f"{sweep_digest(digests)}.jsonl"
    )


def test_append_and_replay_roundtrip(tmp_path):
    scenarios = [tiny(label="a"), tiny(env="roce", label="b")]
    results = {s.digest(): run(s) for s in scenarios}
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        for digest, result in results.items():
            journal.append_ok(digest, result)
    replayed = SweepJournal(path).replay()
    assert replayed == results


def test_replay_tolerates_truncated_final_line(tmp_path):
    scenario = tiny(label="a")
    result = run(scenario)
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.append_ok(scenario.digest(), result)
        journal.append_ok(scenario.digest(), result)
    raw = path.read_text()
    path.write_text(raw[: len(raw) - len(raw.splitlines()[-1]) // 2 - 1])
    journal = SweepJournal(path)
    assert journal.replay() == {scenario.digest(): result}
    assert journal.corrupt_lines == 1


def test_replay_skips_garbage_and_mismatched_records(tmp_path):
    scenario = tiny(label="a")
    result = run(scenario)
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.append_ok(scenario.digest(), result)
        journal._append(  # digest does not match the embedded result
            {
                "schema": SCHEMA,
                "digest": "f" * 64,
                "status": "ok",
                "result": result.to_dict(),
            }
        )
        journal._append({"schema": "wrong/schema", "digest": "a" * 64})
    with path.open("a") as fh:
        fh.write("this is not json\n")
    journal = SweepJournal(path)
    assert journal.replay() == {scenario.digest(): result}
    assert journal.corrupt_lines == 3


def test_journaled_failure_is_retried_not_replayed(tmp_path):
    path = tmp_path / "sweep.jsonl"
    failure = ScenarioFailure(
        index=3, scenario="s3", digest="d" * 64,
        kind="timeout", error="exceeded 1s", attempts=2,
    )
    with SweepJournal(path) as journal:
        journal.append_failure(failure)
    journal = SweepJournal(path)
    assert journal.replay() == {}  # failed records never short-circuit
    assert journal.failed_records == 1
    record = json.loads(path.read_text())
    assert record["status"] == "failed"
    assert ScenarioFailure.from_dict(record["failure"]) == failure


def test_delete_removes_journal(tmp_path):
    scenario = tiny(label="a")
    path = tmp_path / "sweep.jsonl"
    journal = SweepJournal(path)
    journal.append_ok(scenario.digest(), run(scenario))
    journal.delete()
    assert not path.exists()
    journal.delete()  # idempotent
