"""Supervised-pool fault handling: retries, timeouts, crashes, quarantine.

Worker functions live at module level so they pickle by reference into pool
workers.  Crash/flake functions coordinate "already failed once" through
marker files in a directory passed alongside each item — the retried attempt
may land on a different (respawned) worker process, so process-local state
cannot carry that bit.
"""

import os
import signal
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.exec import ScenarioFailure, SweepError, SweepOutcome, SweepPolicy, pmap


def _square(x):
    return x * x


def _fail_on_13(x):
    if x == 13:
        raise ValueError("unlucky")
    return x * x


def _fail_once(item):
    value, marker_dir = item
    marker = Path(marker_dir) / f"{value}.failed"
    if value == 13 and not marker.exists():
        marker.touch()
        raise ValueError("transient")
    return value * value


def _kill_once(item):
    value, marker_dir = item
    marker = Path(marker_dir) / f"{value}.killed"
    if value == 13 and not marker.exists():
        marker.touch()
        os.kill(os.getpid(), signal.SIGKILL)
    return value * value


def _hang_on_13(x):
    if x == 13:
        time.sleep(30.0)
    return x * x


# --------------------------------------------------------------------- #
# policy / dataclasses
# --------------------------------------------------------------------- #


def test_policy_validation():
    with pytest.raises(ConfigurationError):
        SweepPolicy(timeout=0.0)
    with pytest.raises(ConfigurationError):
        SweepPolicy(retries=-1)
    with pytest.raises(ConfigurationError):
        SweepPolicy(backoff=-0.1)
    with pytest.raises(ConfigurationError):
        SweepPolicy(on_error="ignore")


def test_backoff_schedule_is_pure_exponential():
    policy = SweepPolicy(backoff=0.05)
    assert [policy.delay(a) for a in (1, 2, 3)] == [0.05, 0.1, 0.2]
    assert SweepPolicy(backoff=0.0).delay(5) == 0.0


def test_failure_roundtrip_and_outcome_helpers():
    failure = ScenarioFailure(
        index=2, scenario="s2", digest="d" * 64,
        kind="error", error="boom", attempts=3,
    )
    assert ScenarioFailure.from_dict(failure.to_dict()) == failure
    assert "boom" in failure.describe()
    outcome = SweepOutcome(results=[1, None, 4], failures=[failure])
    assert len(outcome) == 3
    assert list(outcome) == [1, None, 4]
    assert outcome[2] == 4
    assert outcome.completed() == [1, 4]
    assert outcome.failed_indices() == [2]
    manifest = outcome.manifest()
    assert manifest["failures"][0]["kind"] == "error"
    assert manifest["stats"]["executed"] == 0


# --------------------------------------------------------------------- #
# quarantine semantics (inline and pool paths)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("jobs", [1, 2], ids=["inline", "pool"])
def test_poison_item_raises_by_default(jobs):
    items = [1, 13, 2]
    with pytest.raises(SweepError) as excinfo:
        pmap(_fail_on_13, items, jobs=jobs, retries=1, backoff=0.0)
    failure = excinfo.value.failure
    assert failure.index == 1
    assert failure.kind == "error"
    assert failure.attempts == 2  # initial try + 1 retry


@pytest.mark.parametrize("jobs", [1, 2], ids=["inline", "pool"])
def test_poison_item_is_quarantined_under_collect(jobs):
    items = [1, 13, 2, 3]
    outcome = pmap(
        _fail_on_13, items, jobs=jobs, retries=1, backoff=0.0,
        on_error="collect",
    )
    assert isinstance(outcome, SweepOutcome)
    assert outcome.results == [1, None, 4, 9]
    assert outcome.failed_indices() == [1]
    assert outcome.failures[0].kind == "error"
    assert "ValueError" in outcome.failures[0].error
    assert outcome.stats["quarantined"] == 1
    assert outcome.stats["retries"] == 1
    assert outcome.stats["executed"] == 3


@pytest.mark.parametrize("jobs", [1, 2], ids=["inline", "pool"])
def test_transient_failure_is_retried_to_success(jobs, tmp_path):
    items = [(v, str(tmp_path)) for v in (1, 13, 2)]
    outcome = pmap(
        _fail_once, items, jobs=jobs, retries=1, backoff=0.0,
        on_error="collect",
    )
    assert outcome.results == [1, 169, 4]
    assert outcome.failures == []
    assert outcome.stats["retries"] == 1


# --------------------------------------------------------------------- #
# worker death and hangs (pool path only)
# --------------------------------------------------------------------- #


def test_sigkilled_worker_costs_only_its_task(tmp_path):
    """A worker SIGKILLed mid-task is respawned; completed results survive
    and the killed task succeeds on retry."""
    items = [(v, str(tmp_path)) for v in range(20)]
    outcome = pmap(
        _kill_once, items, jobs=2, retries=1, backoff=0.0, on_error="collect",
    )
    assert outcome.results == [v * v for v in range(20)]
    assert outcome.failures == []
    assert outcome.stats["worker_crashes"] == 1
    assert outcome.stats["worker_respawns"] >= 1
    assert outcome.stats["retries"] == 1


def test_worker_crash_without_retries_is_quarantined(tmp_path):
    items = [(v, str(tmp_path)) for v in (1, 13, 2)]
    outcome = pmap(
        _kill_once, items, jobs=2, retries=0, on_error="collect",
    )
    assert outcome.results == [1, None, 4]
    assert outcome.failures[0].kind == "worker-crash"
    assert outcome.stats["quarantined"] == 1


def test_hung_task_is_killed_at_timeout_and_quarantined():
    items = [1, 13, 2, 3]
    t0 = time.perf_counter()
    outcome = pmap(
        _hang_on_13, items, jobs=2, timeout=0.75, retries=0,
        on_error="collect",
    )
    elapsed = time.perf_counter() - t0
    assert outcome.results == [1, None, 4, 9]
    assert outcome.failures[0].kind == "timeout"
    assert outcome.failures[0].index == 1
    assert outcome.stats["timeouts"] == 1
    assert elapsed < 15.0  # the 30s sleeper was killed, not awaited


def test_timeout_forces_pool_even_for_jobs_1():
    """timeout needs a killable worker process, so jobs=1 + timeout must
    still clear a hung task instead of blocking the caller forever."""
    outcome = pmap(
        _hang_on_13, [1, 13, 2], jobs=1, timeout=0.75, retries=0,
        on_error="collect",
    )
    assert outcome.results == [1, None, 4]
    assert outcome.failures[0].kind == "timeout"


def test_pmap_default_path_unchanged():
    items = list(range(10))
    assert pmap(_square, items, jobs=1) == [i * i for i in items]
    assert pmap(_square, items, jobs=4) == [i * i for i in items]
