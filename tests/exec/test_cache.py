"""Cache correctness: byte-identity, invalidation, salt discipline."""

import dataclasses
import json

import pytest

from repro.api import Scenario, run, sweep
from repro.exec import ResultCache
import repro.exec.digest as digest_mod
from repro.faults import FaultEvent, FaultKind


def tiny(**overrides):
    kw = dict(
        env="hybrid", nodes=2, gpus_per_node=2,
        num_layers=4, hidden_size=256, num_attention_heads=4,
        seq_length=128, vocab_size=1024,
        pipeline=2, micro_batch_size=1, num_microbatches=2,
    )
    kw.update(overrides)
    return Scenario(**kw)


FAULTED = tiny(fault_events=(
    FaultEvent(time=0.001, kind=FaultKind.NIC_FLAP, node=0, duration=10.0),
    FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=1, factor=1.5),
))


@pytest.mark.parametrize("scenario", [tiny(), FAULTED],
                         ids=["fault-free", "faulted"])
def test_cached_result_is_byte_identical(tmp_path, scenario):
    cache = ResultCache(tmp_path)
    fresh = run(scenario)
    cache.put(scenario, fresh)
    cached = cache.get(scenario)
    assert cached == fresh  # full dataclass equality, every field
    # and the on-disk JSON round-trips the floats exactly
    raw = json.loads(cache.path_for(scenario.digest()).read_text())
    assert raw["result"]["iteration_time"] == fresh.iteration_time


def test_sweep_populates_and_reuses_cache(tmp_path):
    cache = ResultCache(tmp_path)
    scenarios = [tiny(), tiny(env="ib"), FAULTED]
    first = sweep(scenarios, cache=cache)
    assert cache.misses == len(scenarios)
    warm = sweep(scenarios, cache=cache)
    assert cache.hits == len(scenarios)
    assert warm == first


def test_any_field_change_is_a_cache_miss(tmp_path):
    cache = ResultCache(tmp_path)
    base = tiny()
    cache.put(base, run(base))
    for changed in (
        tiny(env="ib"),
        tiny(hidden_size=512),
        tiny(schedule="gpipe"),
        tiny(framework="holmes-full"),
        tiny(fault_seed=1),
        dataclasses.replace(FAULTED),
        tiny(bandwidth_scale=0.75),
        tiny(trace_enabled=False),
    ):
        assert cache.get(changed) is None, changed.describe()


def test_salt_bump_invalidates_everything(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    scenario = tiny()
    cache.put(scenario, run(scenario))
    assert cache.get(scenario) is not None
    monkeypatch.setattr(digest_mod, "CODE_VERSION_SALT", "holmes-sim.test")
    assert cache.get(scenario) is None


def test_put_refuses_stale_digest(tmp_path, monkeypatch):
    cache = ResultCache(tmp_path)
    scenario = tiny()
    result = run(scenario)
    monkeypatch.setattr(digest_mod, "CODE_VERSION_SALT", "holmes-sim.test")
    # result.scenario_digest was minted under the old salt
    with pytest.raises(ValueError):
        cache.put(scenario, result)


def test_corrupt_entry_is_a_miss_not_a_crash(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = tiny()
    cache.put(scenario, run(scenario))
    cache.path_for(scenario.digest()).write_text("{not json")
    assert cache.get(scenario) is None


def test_corrupt_entry_is_quarantined_once(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = tiny()
    path = cache.put(scenario, run(scenario))
    path.write_text("{not json")
    assert cache.get(scenario) is None
    # renamed aside, counted, and never re-parsed on later lookups
    assert not path.exists()
    quarantined = path.parent / (path.name + ".corrupt")
    assert quarantined.exists()
    assert cache.stats()["corrupt"] == 1
    assert cache.get(scenario) is None  # clean miss now
    assert cache.stats()["corrupt"] == 1


def test_schema_mismatch_is_quarantined(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = tiny()
    path = cache.put(scenario, run(scenario))
    entry = json.loads(path.read_text())
    entry["schema"] = "something/else"
    path.write_text(json.dumps(entry))
    assert cache.get(scenario) is None
    assert not path.exists()
    assert cache.stats()["corrupt"] == 1


def test_prune_removes_stale_tmp_debris_only(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = tiny()
    cache.put(scenario, run(scenario))
    debris = tmp_path / scenario.digest()[:2] / ".deadbeef.orphan.tmp"
    debris.write_text("partial write from a killed sweep")
    # default TTL keeps young temp files (may belong to a live writer)
    assert cache.prune() == 0
    assert debris.exists()
    # ttl=0 reclaims everything stale-or-not; real entries are untouched
    assert cache.prune(ttl=0) == 1
    assert not debris.exists()
    assert cache.get(scenario) is not None


def test_stats_report_journal_debris(tmp_path):
    cache = ResultCache(tmp_path)
    journal_dir = tmp_path / "journal"
    journal_dir.mkdir()
    (journal_dir / "abcd.jsonl").write_text('{"x": 1}\n')
    (journal_dir / "abcd.events.jsonl").write_text('{"y": 2}\n')
    stats = cache.stats()
    assert stats["journal_files"] == 2
    assert stats["journal_bytes"] == 18


def test_prune_spares_journals_unless_asked(tmp_path):
    cache = ResultCache(tmp_path)
    journal_dir = tmp_path / "journal"
    journal_dir.mkdir()
    journal = journal_dir / "abcd.jsonl"
    journal.write_text('{"x": 1}\n')
    # the default (sweep-startup) prune never touches resumable journals
    assert cache.prune(ttl=0) == 0
    assert journal.exists()
    # the explicit maintenance path does
    assert cache.prune(ttl=0, journals=True) == 1
    assert not journal.exists()
    assert cache.stats()["journal_files"] == 0


def test_cache_stats_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    scenario = tiny()
    path = cache.put(scenario, run(scenario))
    assert len(cache) == 1
    stats = cache.stats()
    assert stats["entries"] == 1
    # clear also sweeps quarantined and temp debris
    (path.parent / "x.json.corrupt").write_text("junk")
    (path.parent / ".junk.tmp").write_text("junk")
    cache.clear()
    assert len(cache) == 0
    assert list(tmp_path.glob("*/*.corrupt")) == []
    assert list(tmp_path.glob("*/*.tmp")) == []
    assert cache.get(scenario) is None
