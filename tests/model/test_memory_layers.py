"""Tests for byte accounting and the layer stack builder."""

import pytest

from repro.errors import ConfigurationError
from repro.model.config import GPTConfig
from repro.model.layers import LayerKind, build_layer_stack
from repro.model.memory import (
    GRAD_BYTES_PER_PARAM,
    OPTIMIZER_BYTES_PER_PARAM,
    PARAM_BYTES_PER_PARAM,
    activation_message_bytes,
    gradient_bytes,
    optimizer_state_bytes,
    parameter_bytes,
    tp_allreduce_bytes,
)
from repro.model.params import parameter_count


@pytest.fixture
def model():
    return GPTConfig(num_layers=4, hidden_size=512, num_attention_heads=8,
                     seq_length=128, vocab_size=2048)


class TestByteAccounting:
    def test_mixed_precision_constants(self):
        assert GRAD_BYTES_PER_PARAM == 4  # fp32 accumulation
        assert PARAM_BYTES_PER_PARAM == 2  # fp16 weights
        assert OPTIMIZER_BYTES_PER_PARAM == 12  # Adam m, v + master fp32

    def test_gradient_bytes(self):
        assert gradient_bytes(1000) == 4000

    def test_parameter_bytes(self):
        assert parameter_bytes(1000) == 2000

    def test_optimizer_state_bytes(self):
        assert optimizer_state_bytes(1000) == 12000

    def test_negative_params_rejected(self):
        for fn in (gradient_bytes, parameter_bytes, optimizer_state_bytes):
            with pytest.raises(ConfigurationError):
                fn(-1)


class TestActivationMessages:
    def test_full_activation(self, model):
        nbytes = activation_message_bytes(model, 4, tensor_parallel=1)
        assert nbytes == 4 * 128 * 512 * 2

    def test_scatter_gather_divides_by_t(self, model):
        full = activation_message_bytes(model, 4, tensor_parallel=1)
        split = activation_message_bytes(model, 4, tensor_parallel=8)
        assert split == full // 8

    def test_scatter_gather_disabled(self, model):
        full = activation_message_bytes(
            model, 4, tensor_parallel=8, scatter_gather=False
        )
        assert full == 4 * 128 * 512 * 2

    def test_tp_allreduce_bytes(self, model):
        assert tp_allreduce_bytes(model, 2) == 2 * 128 * 512 * 2

    def test_invalid_args(self, model):
        with pytest.raises(ConfigurationError):
            activation_message_bytes(model, 0)
        with pytest.raises(ConfigurationError):
            activation_message_bytes(model, 1, tensor_parallel=0)
        with pytest.raises(ConfigurationError):
            tp_allreduce_bytes(model, 0)


class TestLayerStack:
    def test_stack_structure(self, model):
        stack = build_layer_stack(model, microbatch=2)
        kinds = [layer.kind for layer in stack]
        assert kinds[0] == LayerKind.EMBEDDING
        assert kinds[-1] == LayerKind.LOGIT
        assert all(k == LayerKind.TRANSFORMER for k in kinds[1:-1])
        assert len(stack) == model.num_layers + 2

    def test_params_sum_to_eq5(self, model):
        stack = build_layer_stack(model, microbatch=2)
        assert sum(l.params for l in stack) == parameter_count(model)

    def test_embedding_has_no_flops(self, model):
        stack = build_layer_stack(model, microbatch=2)
        assert stack[0].forward_flops == 0.0
        assert stack[0].backward_flops == 0.0

    def test_logit_flops_present(self, model):
        stack = build_layer_stack(model, microbatch=2)
        assert stack[-1].forward_flops > 0
        assert stack[-1].params == 0  # tied to embedding weights

    def test_transformer_layers_identical(self, model):
        stack = build_layer_stack(model, microbatch=2)
        transformer = stack[1:-1]
        assert len({l.forward_flops for l in transformer}) == 1
        assert len({l.params for l in transformer}) == 1

    def test_invalid_microbatch(self, model):
        with pytest.raises(ConfigurationError):
            build_layer_stack(model, microbatch=0)
