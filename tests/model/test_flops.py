"""Tests for FLOP accounting (paper Eq. 6) and the TFLOPS metric."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.model.config import GPTConfig
from repro.model.flops import (
    achieved_tflops_per_gpu,
    flops_per_iteration,
    layer_flops_per_microbatch,
    layer_forward_flops,
    logit_flops_per_microbatch,
    throughput_samples_per_second,
)


@pytest.fixture
def pg1_model():
    return GPTConfig(num_layers=30, hidden_size=3072, num_attention_heads=32)


class TestEquation6:
    def test_closed_form(self, pg1_model):
        B, s = 768, 2048
        l, h, V = 30, 3072, 51200
        expected = 96 * B * s * l * h * h * (1 + s / (6 * h) + V / (16 * l * h))
        assert flops_per_iteration(pg1_model, B) == pytest.approx(expected)

    def test_linear_in_batch(self, pg1_model):
        f1 = flops_per_iteration(pg1_model, 256)
        f2 = flops_per_iteration(pg1_model, 512)
        assert f2 == pytest.approx(2 * f1)

    def test_decomposition_matches_total(self, pg1_model):
        """Layer + logit FLOPs over all microbatches reproduce Eq. 6."""
        B = 768
        per_layer = layer_flops_per_microbatch(pg1_model, B)
        logit = logit_flops_per_microbatch(pg1_model, B)
        total = (
            pg1_model.num_layers * (per_layer["forward"] + per_layer["backward"])
            + logit["forward"]
            + logit["backward"]
        )
        assert total == pytest.approx(flops_per_iteration(pg1_model, B), rel=1e-12)

    def test_backward_is_three_forward_units(self, pg1_model):
        per_layer = layer_flops_per_microbatch(pg1_model, 4)
        assert per_layer["backward"] == pytest.approx(3 * per_layer["forward"])

    def test_logit_backward_is_two_forward(self, pg1_model):
        logit = logit_flops_per_microbatch(pg1_model, 4)
        assert logit["backward"] == pytest.approx(2 * logit["forward"])
        assert logit["forward"] == pytest.approx(
            2 * 4 * 2048 * 3072 * 51200
        )

    def test_invalid_batch_rejected(self, pg1_model):
        with pytest.raises(ConfigurationError):
            flops_per_iteration(pg1_model, 0)
        with pytest.raises(ConfigurationError):
            layer_forward_flops(pg1_model, 0)

    @given(B=st.integers(1, 4096))
    def test_property_flops_positive(self, B):
        config = GPTConfig(num_layers=2, hidden_size=256, num_attention_heads=4)
        assert flops_per_iteration(config, B) > 0


class TestMetrics:
    def test_tflops_paper_consistency(self, pg1_model):
        """Table 1 internal consistency: 197 TFLOPS and 99.23 samples/s on
        32 GPUs imply the same iteration time (within rounding)."""
        iter_from_throughput = 768 / 99.23
        tflops = achieved_tflops_per_gpu(pg1_model, 768, iter_from_throughput, 32)
        assert tflops == pytest.approx(197, rel=0.03)

    def test_throughput(self):
        assert throughput_samples_per_second(768, 7.68) == pytest.approx(100.0)

    def test_invalid_inputs_rejected(self, pg1_model):
        with pytest.raises(ConfigurationError):
            achieved_tflops_per_gpu(pg1_model, 768, 0.0, 32)
        with pytest.raises(ConfigurationError):
            achieved_tflops_per_gpu(pg1_model, 768, 1.0, 0)
        with pytest.raises(ConfigurationError):
            throughput_samples_per_second(0, 1.0)
        with pytest.raises(ConfigurationError):
            throughput_samples_per_second(1, 0.0)

    def test_tflops_inverse_in_time(self, pg1_model):
        fast = achieved_tflops_per_gpu(pg1_model, 768, 5.0, 32)
        slow = achieved_tflops_per_gpu(pg1_model, 768, 10.0, 32)
        assert fast == pytest.approx(2 * slow)
