"""Tests for GPTConfig and parameter counting (paper Eq. 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.model.config import GPTConfig
from repro.model.params import (
    embedding_params,
    layer_parameter_counts,
    parameter_count,
    transformer_layer_params,
)


class TestGPTConfig:
    def test_defaults_match_paper(self):
        config = GPTConfig(num_layers=30, hidden_size=3072, num_attention_heads=32)
        assert config.seq_length == 2048
        assert config.vocab_size == 51200
        assert config.dtype_bytes == 2

    def test_head_dim(self):
        config = GPTConfig(num_layers=2, hidden_size=1024, num_attention_heads=16)
        assert config.head_dim == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_layers=0, hidden_size=64, num_attention_heads=4),
            dict(num_layers=2, hidden_size=0, num_attention_heads=4),
            dict(num_layers=2, hidden_size=64, num_attention_heads=0),
            dict(num_layers=2, hidden_size=65, num_attention_heads=4),  # not divisible
            dict(num_layers=2, hidden_size=64, num_attention_heads=4, seq_length=0),
            dict(num_layers=2, hidden_size=64, num_attention_heads=4, vocab_size=0),
            dict(num_layers=2, hidden_size=64, num_attention_heads=4, dtype_bytes=3),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            GPTConfig(**kwargs)

    def test_describe_reports_billions(self):
        config = GPTConfig(num_layers=30, hidden_size=3072, num_attention_heads=32)
        assert "3.6B" in config.describe()


class TestEquation5:
    """P = 12 l h^2 (1 + 13/(12h) + (V+s)/(12lh))."""

    @pytest.mark.parametrize(
        "layers,hidden,heads,expected_billions",
        [
            (30, 3072, 32, 3.6),  # parameter group 1/2
            (36, 4096, 32, 7.5),  # parameter groups 3-6
            (48, 8192, 64, 39.1),  # parameter groups 7/8
        ],
    )
    def test_matches_table2(self, layers, hidden, heads, expected_billions):
        config = GPTConfig(layers, hidden, heads)
        assert parameter_count(config) / 1e9 == pytest.approx(
            expected_billions, rel=0.02
        )

    def test_exact_closed_form(self):
        config = GPTConfig(num_layers=4, hidden_size=128, num_attention_heads=8,
                           seq_length=64, vocab_size=1000)
        l, h, V, s = 4, 128, 1000, 64
        formula = 12 * l * h * h * (1 + 13 / (12 * h) + (V + s) / (12 * l * h))
        assert parameter_count(config) == pytest.approx(formula)

    def test_components_sum_to_total(self):
        config = GPTConfig(num_layers=12, hidden_size=768, num_attention_heads=12)
        total = (
            config.num_layers * transformer_layer_params(config)
            + embedding_params(config)
        )
        assert total == parameter_count(config)

    def test_layer_parameter_counts_dict(self):
        config = GPTConfig(num_layers=2, hidden_size=64, num_attention_heads=4)
        counts = layer_parameter_counts(config)
        assert counts["total"] == parameter_count(config)
        assert counts["num_transformer_layers"] == 2

    @given(
        l=st.integers(1, 96),
        h=st.sampled_from([256, 512, 1024, 4096]),
    )
    def test_property_params_positive_and_monotone_in_layers(self, l, h):
        config = GPTConfig(l, h, num_attention_heads=4)
        bigger = GPTConfig(l + 1, h, num_attention_heads=4)
        assert 0 < parameter_count(config) < parameter_count(bigger)
