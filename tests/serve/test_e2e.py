"""The daemon as a black box: boot ``python -m repro serve`` as a
subprocess, drive a Table-3-style grid from two tenants concurrently over
real HTTP, and verify the service contract end to end —

- the served ``/v1/run`` document is byte-identical to a local run,
- both tenants share one warm cache (the second tenant's grid is >= 90%
  cache hits),
- per-tenant quotas shed excess load with 429,
- SIGTERM drains cleanly: exit code 0 and a ``serve`` ledger record.

Single-runner daemon + the fair queue make the cache-sharing assertion
deterministic: tenant A's whole sweep completes before tenant B's
identical sweep starts, so B can only hit.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Scenario, run
from repro.client import ServeClient, ServeClientError

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: A small Table-3-style grid: NIC environment x workload, fast cells.
GRID = [
    Scenario.from_group(
        env, 2, 1, tensor=1, pipeline=1, data=0, global_batch_size=0,
        num_microbatches=m, trace_enabled=False, fidelity="auto",
    )
    for env in ("ib", "roce", "ethernet")
    for m in (2, 3)
]


def boot_daemon(tmp_path, *extra):
    """Start ``repro serve`` on an ephemeral port; return (proc, url)."""
    port_file = tmp_path / "port"
    env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED="0")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--port-file", str(port_file), "--cache", str(tmp_path / "cache"),
         "--workers", "1", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    deadline = time.time() + 60
    while not port_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(
                f"daemon died at boot: {proc.stdout.read().decode()}")
        if time.time() > deadline:
            proc.kill()
            raise RuntimeError("daemon never wrote its port file")
        time.sleep(0.05)
    port = int(port_file.read_text().strip())
    return proc, f"http://127.0.0.1:{port}"


def terminate(proc):
    """SIGTERM the daemon and return (exit_code, captured_output)."""
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
    return proc.returncode, out.decode()


def serve_ledger_records(tmp_path):
    ledger = tmp_path / "cache" / "ledger.jsonl"
    if not ledger.exists():
        return []
    records = [json.loads(line) for line in
               ledger.read_text().splitlines() if line.strip()]
    return [r for r in records if r.get("kind") == "serve"]


@pytest.mark.slow
def test_two_tenants_share_one_warm_cache_end_to_end(tmp_path):
    proc, url = boot_daemon(tmp_path)
    try:
        alice = ServeClient(url, tenant="alice")
        bob = ServeClient(url, tenant="bob")

        # --- served result is byte-identical to a local run ---------- #
        local = run(GRID[0]).to_document()
        served = alice.run_document(GRID[0])
        assert (json.dumps(served, sort_keys=True)
                == json.dumps(local, sort_keys=True))

        # --- both tenants submit the same grid, concurrently --------- #
        job_a = alice.submit_sweep(GRID)
        job_b = bob.submit_sweep(GRID)
        doc_a = alice.wait(str(job_a["id"]), timeout=600)
        doc_b = bob.wait(str(job_b["id"]), timeout=600)
        assert doc_a["state"] == "done" and doc_b["state"] == "done"

        # alice warmed the cache (one cell was already served above)...
        stats_a = doc_a["stats"]
        assert stats_a["total"] == len(GRID)
        assert stats_a["executed"] >= len(GRID) - 1
        # ...so bob's identical grid is >= 90% cache hits
        stats_b = doc_b["stats"]
        assert stats_b["total"] == len(GRID)
        assert stats_b["cache_hits"] / stats_b["total"] >= 0.9

        # both sweeps computed identical results (the stats differ by
        # design: alice executed, bob hit the cache she warmed)
        results_a = doc_a["result"]["sweep"]["results"]
        results_b = doc_b["result"]["sweep"]["results"]
        assert (json.dumps(results_a, sort_keys=True)
                == json.dumps(results_b, sort_keys=True))

        # --- the daemon accounts for both tenants in /metrics --------- #
        text = alice.metrics()
        assert 'tenant="alice"' in text and 'tenant="bob"' in text
        hit_rate = next(line for line in text.splitlines()
                        if line.startswith("serve_cache_hit_rate"))
        assert float(hit_rate.split()[-1]) > 0.0
    finally:
        code, out = terminate(proc)

    # --- clean SIGTERM drain: exit 0 + a 'serve' ledger record -------- #
    assert code == 0, out
    assert "drained" in out
    records = serve_ledger_records(tmp_path)
    assert len(records) == 1
    record = records[0]
    assert record["outcome"] == "ok"
    assert record["counts"]["jobs"] >= 3
    assert record["counts"]["failed"] == 0
    assert sorted(record["summary"]["tenants"]) == ["alice", "bob"]


@pytest.mark.slow
def test_quota_sheds_excess_load_with_429(tmp_path):
    proc, url = boot_daemon(tmp_path, "--tenant-quota", "2")
    try:
        greedy = ServeClient(url, tenant="greedy")
        # Stack up cold multi-cell sweeps faster than the single runner
        # can drain them: with quota 2 (queued jobs per tenant) at most
        # 2 queued + 1 running are admitted from this burst of 5 — the
        # rest must be shed with 429.
        accepted, shed = [], 0
        for index in range(5):
            try:
                accepted.append(greedy.submit_sweep(GRID, priority=index))
            except ServeClientError as exc:
                assert exc.status == 429
                shed += 1
        assert shed >= 1
        assert len(accepted) >= 2
        for job in accepted:
            doc = greedy.wait(str(job["id"]), timeout=600)
            assert doc["state"] == "done"
        assert "serve_shed_total" in greedy.metrics()
    finally:
        code, out = terminate(proc)
    assert code == 0, out
    records = serve_ledger_records(tmp_path)
    assert records and records[0]["counts"]["shed"] == shed
