"""The in-process daemon end to end over real sockets: health, the
served-equals-local identity, async sweep lifecycle with event streaming,
admission-control shedding, Prometheus metrics content, and drain.

One module-scoped daemon serves most tests (boot costs a thread + a
socket, and the service is multi-tenant by design); shedding tests boot
their own tightly-bounded instance.
"""

import json

import pytest

from repro.api import Scenario, run
from repro.client import ServeClient, ServeClientError
from repro.serve import ServeConfig, start_in_process


def scenario(env="ib", nodes=2, seed_offset=0):
    return Scenario.from_group(
        env, nodes, 1, tensor=1, pipeline=1, data=0, global_batch_size=0,
        num_microbatches=2 + seed_offset, trace_enabled=False, fidelity="auto",
    )


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("serve")
    config = ServeConfig(port=0, cache_dir=str(root / "cache"))
    handle = start_in_process(config)
    yield handle
    handle.stop()


@pytest.fixture()
def client(daemon):
    return ServeClient(daemon.url, tenant="pytest")


class TestHealthAndRouting:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["ok"] is True
        assert health["draining"] is False
        assert "queue_depth" in health and "active_jobs" in health

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/v2/run")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client._request("GET", "/v1/run")
        assert excinfo.value.status == 405

    def test_malformed_json_is_400(self, daemon, client):
        status, raw, _ = client._raw("POST", "/v1/run", body=None)
        # no body at all: the daemon must refuse, not crash
        assert status == 400
        payload = json.loads(raw)
        assert payload["error"]["status"] == 400

    def test_kind_endpoint_mismatch_is_400(self, client):
        from repro.api.schema import build_request

        request = build_request("sweep", [scenario()], {})
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/v1/run", request)
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.job("j99999-deadbeef")
        assert excinfo.value.status == 404


class TestServedRunIdentity:
    def test_served_document_is_byte_identical_to_local(self, client):
        s = scenario()
        local = run(s).to_document()
        served = client.run_document(s)
        assert (json.dumps(served, sort_keys=True)
                == json.dumps(local, sort_keys=True))

    def test_parsed_result_equals_local(self, client):
        s = scenario()
        assert client.run(s) == run(s)

    def test_bare_canonical_payload_accepted_on_run(self, client):
        # POST /v1/run also takes a bare Scenario.canonical() mapping —
        # the curl-friendly spelling of the same request
        s = scenario()
        doc = client._request("POST", "/v1/run", s.canonical())
        assert doc["kind"] == "run"
        assert (json.dumps(doc, sort_keys=True)
                == json.dumps(run(s).to_document(), sort_keys=True))


class TestSweepLifecycle:
    def test_async_sweep_completes_with_stats_and_events(self, client):
        scenarios = [scenario("ib"), scenario("roce")]
        submitted = client.submit_sweep(scenarios)
        assert submitted["state"] in ("queued", "running")
        job_id = str(submitted["id"])
        doc = client.wait(job_id, timeout=300)
        assert doc["state"] == "done"
        assert doc["stats"]["total"] == 2
        assert doc["stats"]["failed"] == 0
        outcome = client.sweep(scenarios)  # second submit: warm cache
        assert len(outcome.results) == 2
        assert not outcome.failures
        # the flight recorder narrates the job, cache hits included
        events = client.job_events(job_id)
        kinds = [e.get("event") for e in events]
        assert "sweep-begin" in kinds and kinds[-1] == "sweep-end"
        assert "scenario-finished" in kinds

    def test_sync_sweep_with_wait_flag(self, client):
        doc = client.submit_sweep([scenario()], wait=True)
        assert doc["state"] == "done"
        assert doc["result"]["kind"] == "sweep"

    def test_plan_job_over_the_wire(self, client):
        doc = client.submit_plan(scenario(), budget=2, top_k=1,
                                 fidelity="auto", wait=True)
        assert doc["state"] == "done"
        payload = doc["result"]
        assert payload["kind"] == "plan"
        from repro.api.schema import result_from_document

        assert result_from_document(payload).best.digest

    def test_invalid_scenario_is_rejected_not_queued(self, client):
        from repro.api.schema import REQUEST_SCHEMA

        before = client.healthz()["jobs"]
        with pytest.raises(ServeClientError) as excinfo:
            client._request("POST", "/v1/run", {
                "schema": REQUEST_SCHEMA, "kind": "run",
                "scenarios": [{"env": "warp-drive"}], "options": {},
            })
        assert excinfo.value.status == 400
        assert client.healthz()["jobs"] == before


class TestMetrics:
    def test_prometheus_exposition_content(self, client):
        client.run(scenario())  # ensure at least one served run
        text = client.metrics()
        assert "# TYPE serve_queue_depth gauge" in text
        assert "serve_cache_hit_rate" in text
        assert 'serve_requests_total{endpoint="/v1/run",status="200"}' in text
        assert 'tenant="pytest"' in text  # per-tenant counters
        assert "serve_request_seconds" in text  # latency histogram
        assert "serve_jobs_total" in text

    def test_cache_hit_rate_reflects_shared_cache(self, client):
        s = scenario()
        client.run(s)
        client.run(s)  # identical: must be a cache hit
        text = client.metrics()
        line = next(l for l in text.splitlines()
                    if l.startswith("serve_cache_hit_rate"))
        assert float(line.split()[-1]) > 0.0


class TestShedding:
    def test_backlog_and_quota_shed_with_429(self, tmp_path, monkeypatch):
        # Deterministic admission control: no runner threads, so queued
        # jobs stay queued and every limit is exercised exactly.
        from repro.serve.server import SimulationService

        monkeypatch.setattr(SimulationService, "start_workers",
                            lambda self: None)
        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"),
                             max_backlog=3, tenant_quota=2, drain_timeout=0.2)
        handle = start_in_process(config)
        try:
            greedy = ServeClient(handle.url, tenant="greedy")
            other = ServeClient(handle.url, tenant="other")
            greedy.submit_sweep([scenario()])
            greedy.submit_sweep([scenario()])
            # third greedy job breaches the per-tenant quota
            with pytest.raises(ServeClientError) as excinfo:
                greedy.submit_sweep([scenario()])
            assert excinfo.value.status == 429
            assert "quota" in str(excinfo.value) or "queued" in str(excinfo.value)
            # another tenant is unaffected by greedy's quota...
            other.submit_sweep([scenario()])
            # ...until the service-wide backlog (3) is full
            with pytest.raises(ServeClientError) as excinfo:
                other.submit_sweep([scenario()])
            assert excinfo.value.status == 429
            assert "backlog" in str(excinfo.value)
            text = greedy.metrics()
            assert 'reason="QuotaExceeded"' in text
            assert 'reason="BacklogFull"' in text
            assert "serve_queue_depth 3" in text
        finally:
            # queued jobs never ran: the bounded drain gives up quickly
            # and reports the partial outcome honestly
            assert handle.stop(drain_timeout=0.2) == "partial"

    def test_draining_service_refuses_new_work_with_503(self, tmp_path):
        from repro.serve.server import _HttpError

        config = ServeConfig(port=0, cache_dir=str(tmp_path / "cache"))
        handle = start_in_process(config)
        assert handle.stop() == "ok"
        with pytest.raises(_HttpError) as excinfo:
            handle.service.submit("run", [scenario()], {}, "late")
        assert excinfo.value.status == 503
