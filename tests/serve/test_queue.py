"""The multi-tenant job queue: priority within a tenant, FIFO on ties,
round-robin fairness across tenants, quota/backlog shedding, and clean
close semantics — all independent of HTTP and the runner threads."""

import threading

import pytest

from repro.serve.queue import (
    BacklogFull,
    Job,
    JobQueue,
    QueueRejection,
    QuotaExceeded,
)


def job(tenant="a", priority=0, kind="run"):
    return Job(id=f"j-{tenant}-{priority}", tenant=tenant, kind=kind,
               scenarios=[object()], options={}, priority=priority)


class TestOrdering:
    def test_priority_within_a_tenant(self):
        q = JobQueue()
        low = q.submit(job("a", priority=5))
        urgent = q.submit(job("a", priority=-1))
        normal = q.submit(job("a", priority=0))
        assert [q.take(0) for _ in range(3)] == [urgent, normal, low]

    def test_fifo_on_priority_ties(self):
        q = JobQueue()
        first, second, third = (q.submit(job("a")) for _ in range(3))
        assert [q.take(0) for _ in range(3)] == [first, second, third]

    def test_round_robin_across_tenants(self):
        q = JobQueue()
        a1, a2 = q.submit(job("a")), q.submit(job("a"))
        b1, b2 = q.submit(job("b")), q.submit(job("b"))
        c1 = q.submit(job("c"))
        # a chatty tenant cannot take two consecutive slots while other
        # tenants have queued work
        order = [q.take(0) for _ in range(5)]
        assert order == [a1, b1, c1, a2, b2]

    def test_rotation_alternates_under_sustained_load(self):
        # two tenants keeping the queue non-empty strictly alternate —
        # no consecutive grants to the same tenant
        q = JobQueue()
        for _ in range(3):
            q.submit(job("a"))
            q.submit(job("b"))
        served = [q.take(0).tenant for _ in range(6)]
        assert sorted(served) == ["a"] * 3 + ["b"] * 3
        assert all(x != y for x, y in zip(served, served[1:]))

    def test_priority_is_per_tenant_not_global(self):
        q = JobQueue()
        q.submit(job("a", priority=9))
        q.submit(job("b", priority=-9))
        # fairness outranks global priority: a was first in rotation
        assert q.take(0).tenant == "a"
        assert q.take(0).tenant == "b"


class TestShedding:
    def test_backlog_full(self):
        q = JobQueue(max_backlog=2, tenant_quota=16)
        q.submit(job("a"))
        q.submit(job("b"))
        with pytest.raises(BacklogFull):
            q.submit(job("c"))
        # draining one job frees one admission slot
        q.take(0)
        q.submit(job("c"))

    def test_tenant_quota(self):
        q = JobQueue(max_backlog=64, tenant_quota=2)
        q.submit(job("a"))
        q.submit(job("a"))
        with pytest.raises(QuotaExceeded):
            q.submit(job("a"))
        # other tenants are unaffected
        q.submit(job("b"))

    def test_rejections_are_queue_rejections(self):
        assert issubclass(BacklogFull, QueueRejection)
        assert issubclass(QuotaExceeded, QueueRejection)

    def test_limits_validated(self):
        with pytest.raises(ValueError):
            JobQueue(max_backlog=0)
        with pytest.raises(ValueError):
            JobQueue(tenant_quota=0)


class TestTakeAndClose:
    def test_take_times_out_empty(self):
        assert JobQueue().take(0.01) is None

    def test_take_blocks_until_submit(self):
        q = JobQueue()
        got = []
        thread = threading.Thread(target=lambda: got.append(q.take(5.0)))
        thread.start()
        submitted = q.submit(job("a"))
        thread.join(timeout=5.0)
        assert got == [submitted]

    def test_closed_queue_rejects_submissions(self):
        q = JobQueue()
        q.close()
        with pytest.raises(QueueRejection, match="closed"):
            q.submit(job("a"))

    def test_closed_queue_still_drains(self):
        q = JobQueue()
        queued = q.submit(job("a"))
        q.close()
        assert q.take(0) is queued
        assert q.take(0) is None

    def test_close_wakes_blocked_takers(self):
        q = JobQueue()
        got = []
        thread = threading.Thread(target=lambda: got.append(q.take(30.0)))
        thread.start()
        q.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]


class TestIntrospection:
    def test_depths(self):
        q = JobQueue()
        q.submit(job("a"))
        q.submit(job("a"))
        q.submit(job("b"))
        assert q.depth() == 3
        assert q.tenant_depths() == {"a": 2, "b": 1}
        q.take(0)
        assert q.depth() == 2

    def test_status_document_shape(self):
        j = job("a")
        doc = j.status_document()
        assert doc["state"] == "queued"
        assert doc["scenarios"] == 1
        assert "error" not in doc and "result" not in doc
        j.error = "boom"
        j.document = {"x": 1}
        doc = j.status_document()
        assert doc["error"] == "boom" and doc["result"] == {"x": 1}
