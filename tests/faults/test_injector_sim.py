"""End-to-end fault injection through the training simulation.

Covers the PR's acceptance criteria: a seeded plan replayed twice yields
byte-identical metrics, and an injected mid-run RDMA NIC fault demonstrably
re-routes affected traffic to TCP/Ethernet with a longer — but finite —
iteration (bounded retries, no deadlock).
"""

import pytest

from repro.core.engine import TrainingSimulation
from repro.core.scheduler import HolmesScheduler
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.model.config import GPTConfig
from repro.parallel.degrees import ParallelConfig

MODEL = GPTConfig(num_layers=8, hidden_size=1024, num_attention_heads=8,
                  seq_length=512, vocab_size=8192)
# Two nodes per cluster so data-parallel groups span nodes over RDMA.
TOPOLOGY = make_topology(
    [(2, NICType.ROCE), (2, NICType.INFINIBAND)],
    inter_cluster_rdma=False, gpus_per_node=2,
)
PARALLEL = ParallelConfig(tensor=1, pipeline=2, data=4,
                          micro_batch_size=2, global_batch_size=32)
PLAN = HolmesScheduler().plan(TOPOLOGY, PARALLEL, MODEL)


def run(fault_plan=None):
    return TrainingSimulation(
        PLAN, MODEL, fault_plan=fault_plan, iteration_overhead=0.0
    ).run()


HEALTHY = run()

MID_RUN_FLAP = FaultPlan(events=(
    FaultEvent(time=0.005, kind=FaultKind.NIC_FLAP, node=0, duration=300.0),
))


class TestDeterminism:
    def test_seeded_plan_replays_byte_identical(self):
        plan = FaultPlan.random(
            TOPOLOGY, horizon=HEALTHY.iteration_time, seed=7, num_events=4
        )
        a = run(plan)
        b = run(plan)
        assert a.iteration_time == b.iteration_time  # exact, not approx
        assert a.metrics == b.metrics
        assert a.faults.records == b.faults.records
        assert a.faults.retry_time == b.faults.retry_time

    def test_empty_plan_matches_no_plan(self):
        assert run(FaultPlan()).iteration_time == HEALTHY.iteration_time


class TestNicFlapFallback:
    def test_rdma_fault_reroutes_to_ethernet_and_finishes(self):
        result = run(MID_RUN_FLAP)
        report = result.faults
        # Affected traffic fell back to TCP/Ethernet...
        assert report.fallback_pairs or report.fallback_groups
        # ...paying a communicator rebuild...
        assert report.rebuild_count >= 1
        assert report.rebuild_time > 0.0
        # ...making the iteration longer but finite, with no abort.
        assert result.iteration_time > HEALTHY.iteration_time
        assert result.iteration_time < 100 * HEALTHY.iteration_time
        assert not result.aborted
        assert result.metrics.degraded_time > 0.0

    def test_flap_that_ends_before_any_communication_is_free(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.NIC_FLAP, node=0,
                       duration=1e-5),
        ))
        result = run(plan)
        assert result.iteration_time == pytest.approx(HEALTHY.iteration_time)

    def test_flap_on_unused_family_changes_nothing(self):
        # Node 3 is in the InfiniBand cluster; flapping its IB NIC degrades
        # that cluster's DP group, but a flap on an Ethernet-only path
        # cannot exist — so instead check a flap on node 3 does not touch
        # the ROCE cluster's groups.
        plan = FaultPlan(events=(
            FaultEvent(time=0.005, kind=FaultKind.NIC_FLAP, node=3,
                       duration=300.0),
        ))
        result = run(plan)
        assert all(
            0 not in pair and 1 not in pair
            for pair in result.faults.fallback_pairs
        )


class TestPacketLossAndDegrade:
    def test_lossy_link_pays_bounded_retries(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.PACKET_LOSS, node=0,
                       loss_rate=0.10),
        ))
        result = run(plan)
        assert result.faults.retry_time > 0.0
        assert result.iteration_time > HEALTHY.iteration_time
        assert result.iteration_time < 100 * HEALTHY.iteration_time

    def test_brownout_slows_iteration(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADE, node=0,
                       factor=0.25),
        ))
        result = run(plan)
        assert result.iteration_time > HEALTHY.iteration_time

    def test_deeper_loss_costs_more(self):
        def iteration_at(loss):
            plan = FaultPlan(events=(
                FaultEvent(time=0.0, kind=FaultKind.PACKET_LOSS, node=0,
                           loss_rate=loss),
            ))
            return run(plan).iteration_time

        assert iteration_at(0.05) < iteration_at(0.20) < iteration_at(0.60)


class TestCrashAndStraggler:
    def test_node_crash_aborts_after_detection_no_deadlock(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.01, kind=FaultKind.NODE_CRASH, node=1),
        ))
        result = run(plan)  # must not raise SimulationError (deadlock)
        assert result.aborted
        assert result.faults.aborted
        assert result.faults.crashed_nodes == (1,)

    def test_crash_after_iteration_completes_is_harmless(self):
        plan = FaultPlan(events=(
            FaultEvent(time=HEALTHY.iteration_time + 1.0,
                       kind=FaultKind.NODE_CRASH, node=1),
        ))
        result = run(plan)
        assert not result.aborted

    def test_straggler_slows_only_while_active(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=0,
                       factor=2.0),
        ))
        result = run(plan)
        assert result.iteration_time > HEALTHY.iteration_time

    def test_transient_faults_recover(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=0,
                       factor=10.0, duration=1e-4),
        ))
        transient = run(plan)
        permanent = run(FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=0,
                       factor=10.0),
        )))
        assert transient.iteration_time < permanent.iteration_time
