"""Tests for fault plans: validation, ordering, seeded generation."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology

TOPOLOGY = make_topology(
    [(2, NICType.ROCE), (2, NICType.INFINIBAND)], gpus_per_node=2
)


class TestFaultEvent:
    def test_node_faults_require_node(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.NIC_FLAP)

    def test_straggler_requires_rank_and_slowdown(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER)
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=0, factor=0.5)

    def test_degrade_factor_must_shrink_bandwidth(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADE, node=0, factor=1.5)

    def test_loss_rate_range(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=0.0, kind=FaultKind.PACKET_LOSS, node=0, loss_rate=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(time=-1.0, kind=FaultKind.NODE_CRASH, node=0)

    def test_default_duration_is_permanent(self):
        event = FaultEvent(time=1.0, kind=FaultKind.NIC_FLAP, node=0)
        assert math.isinf(event.duration)
        assert math.isinf(event.end_time)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            FaultEvent(time=5.0, kind=FaultKind.NODE_CRASH, node=1),
            FaultEvent(time=1.0, kind=FaultKind.NIC_FLAP, node=0),
        ))
        assert [e.time for e in plan] == [1.0, 5.0]

    def test_validate_against_checks_node_range(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.NODE_CRASH, node=99),
        ))
        with pytest.raises(ConfigurationError):
            plan.validate_against(TOPOLOGY)

    def test_validate_against_checks_rank_range(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=99, factor=2.0),
        ))
        with pytest.raises(ConfigurationError):
            plan.validate_against(TOPOLOGY)

    def test_nic_flap_needs_rdma_nic(self):
        ethernet_only = make_topology([(2, NICType.ETHERNET)], gpus_per_node=2)
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind=FaultKind.NIC_FLAP, node=0),
        ))
        with pytest.raises(ConfigurationError):
            plan.validate_against(ethernet_only)

    def test_first_crash(self):
        plan = FaultPlan(events=(
            FaultEvent(time=3.0, kind=FaultKind.NODE_CRASH, node=0),
            FaultEvent(time=1.0, kind=FaultKind.NODE_CRASH, node=1),
        ))
        assert plan.first_crash() == 1.0
        assert FaultPlan().first_crash() is None

    def test_extended_merges_and_resorts(self):
        base = FaultPlan(events=(
            FaultEvent(time=2.0, kind=FaultKind.NIC_FLAP, node=0),
        ))
        merged = base.extended(
            [FaultEvent(time=1.0, kind=FaultKind.NODE_CRASH, node=1)]
        )
        assert len(merged) == 2
        assert merged.events[0].kind == FaultKind.NODE_CRASH


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random(TOPOLOGY, horizon=10.0, seed=42, num_events=5)
        b = FaultPlan.random(TOPOLOGY, horizon=10.0, seed=42, num_events=5)
        assert a.events == b.events
        assert a.seed == 42

    def test_different_seeds_differ(self):
        a = FaultPlan.random(TOPOLOGY, horizon=10.0, seed=1, num_events=5)
        b = FaultPlan.random(TOPOLOGY, horizon=10.0, seed=2, num_events=5)
        assert a.events != b.events

    def test_events_within_horizon_and_valid(self):
        plan = FaultPlan.random(TOPOLOGY, horizon=7.5, seed=3, num_events=20)
        assert len(plan) == 20
        assert all(0.0 <= e.time < 7.5 for e in plan)
        plan.validate_against(TOPOLOGY)  # raises on any invalid target

    def test_no_crashes_by_default(self):
        plan = FaultPlan.random(TOPOLOGY, horizon=10.0, seed=4, num_events=30)
        assert plan.first_crash() is None

    def test_ethernet_only_machines_never_get_nic_flaps(self):
        ethernet_only = make_topology([(2, NICType.ETHERNET)], gpus_per_node=2)
        plan = FaultPlan.random(
            ethernet_only, horizon=10.0, seed=5, num_events=30
        )
        assert all(e.kind != FaultKind.NIC_FLAP for e in plan)
