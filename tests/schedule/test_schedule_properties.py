"""Schedule invariants as properties over a (stages, microbatches, chunks)
sweep.

Beyond per-stage completeness (``validate_schedule``), the load-bearing
property is *deadlock freedom*: executed in local order with cross-stage
data dependencies — a forward needs the upstream virtual stage's forward,
a backward needs the downstream virtual stage's backward — every schedule
must drain without a cycle.  The abstract executor below mirrors the
engine's virtual-stage neighbourhood (``_prev_virtual``/``_next_virtual``
in :mod:`repro.core.engine`): chunk ``c`` of stage ``p-1`` feeds chunk
``c+1`` of stage ``0``.
"""

import pytest

from repro.schedule import (
    OpKind,
    gpipe,
    interleaved_1f1b,
    one_f_one_b,
    validate_schedule,
)

pytestmark = pytest.mark.property

SWEEP = [
    (stages, microbatches)
    for stages in (1, 2, 3, 4, 6)
    for microbatches in (1, 2, 4, 6, 8, 12)
]

INTERLEAVED_SWEEP = [
    (stages, microbatches, chunks)
    for stages in (2, 3, 4)
    for chunks in (2, 3)
    for microbatches in (stages, 2 * stages, 4 * stages)
]


def _prev_virtual(stage, chunk, num_stages):
    if stage > 0:
        return (stage - 1, chunk)
    if chunk > 0:
        return (num_stages - 1, chunk - 1)
    return None


def _next_virtual(stage, chunk, num_stages, num_chunks):
    if stage < num_stages - 1:
        return (stage + 1, chunk)
    if chunk < num_chunks - 1:
        return (0, chunk + 1)
    return None


def drain(schedule, num_stages, num_chunks):
    """Execute the schedule abstractly; return ops drained per stage.

    Each stage consumes its op list strictly in order (that is what the
    engine's rank processes do); an op is runnable once its cross-stage
    dependency has already executed.  Raises AssertionError on deadlock.
    """
    pointers = [0] * num_stages
    done = set()  # (kind, microbatch, stage, chunk)
    total = sum(len(ops) for ops in schedule)
    drained = 0
    progress = True
    while progress:
        progress = False
        for stage, ops in enumerate(schedule):
            while pointers[stage] < len(ops):
                op = ops[pointers[stage]]
                if op.kind == OpKind.FORWARD:
                    dep = _prev_virtual(stage, op.chunk, num_stages)
                    need = (
                        (OpKind.FORWARD, op.microbatch, *dep) if dep else None
                    )
                else:
                    dep = _next_virtual(stage, op.chunk, num_stages, num_chunks)
                    need = (
                        (OpKind.BACKWARD, op.microbatch, *dep) if dep else None
                    )
                    own_fwd = (OpKind.FORWARD, op.microbatch, stage, op.chunk)
                    if own_fwd not in done:
                        break
                if need is not None and need not in done:
                    break
                done.add((op.kind, op.microbatch, stage, op.chunk))
                pointers[stage] += 1
                drained += 1
                progress = True
    assert drained == total, (
        f"deadlock: drained {drained}/{total} ops, "
        f"stuck at pointers {pointers}"
    )
    return drained


@pytest.mark.parametrize(("stages", "microbatches"), SWEEP)
class TestFlatSchedules:
    def test_1f1b_complete_and_deadlock_free(self, stages, microbatches):
        schedule = one_f_one_b(stages, microbatches)
        validate_schedule(schedule, microbatches)  # one F + one B per mb
        drain(schedule, stages, num_chunks=1)

    def test_gpipe_complete_and_deadlock_free(self, stages, microbatches):
        schedule = gpipe(stages, microbatches)
        validate_schedule(schedule, microbatches)
        drain(schedule, stages, num_chunks=1)

    def test_op_counts_match_exactly(self, stages, microbatches):
        for schedule in (
            one_f_one_b(stages, microbatches),
            gpipe(stages, microbatches),
        ):
            for ops in schedule:
                fwd = [o for o in ops if o.kind == OpKind.FORWARD]
                bwd = [o for o in ops if o.kind == OpKind.BACKWARD]
                assert len(ops) == 2 * microbatches  # no intra-rank overlap
                assert sorted(o.microbatch for o in fwd) == list(
                    range(microbatches)
                )
                assert sorted(o.microbatch for o in bwd) == list(
                    range(microbatches)
                )


@pytest.mark.parametrize(
    ("stages", "microbatches", "chunks"), INTERLEAVED_SWEEP
)
class TestInterleavedSchedules:
    def test_complete_and_deadlock_free(self, stages, microbatches, chunks):
        schedule = interleaved_1f1b(stages, microbatches, chunks)
        validate_schedule(schedule, microbatches, num_chunks=chunks)
        drain(schedule, stages, chunks)

    def test_every_chunk_fully_covered(self, stages, microbatches, chunks):
        schedule = interleaved_1f1b(stages, microbatches, chunks)
        for ops in schedule:
            assert len(ops) == 2 * microbatches * chunks
            for kind in (OpKind.FORWARD, OpKind.BACKWARD):
                seen = {
                    (o.microbatch, o.chunk) for o in ops if o.kind == kind
                }
                assert seen == {
                    (mb, ck)
                    for mb in range(microbatches)
                    for ck in range(chunks)
                }


class TestDrainCatchesBrokenSchedules:
    def test_circular_dependency_deadlocks(self):
        """Swap two stages' op lists: stage 0 then waits on itself."""
        schedule = one_f_one_b(2, 2)
        broken = [schedule[1], schedule[0]]
        with pytest.raises(AssertionError, match="deadlock"):
            drain(broken, 2, num_chunks=1)

    def test_backward_first_deadlocks(self):
        from repro.schedule import PipelineOp

        broken = [
            [PipelineOp(OpKind.BACKWARD, 0), PipelineOp(OpKind.FORWARD, 0)]
        ]
        with pytest.raises(AssertionError, match="deadlock"):
            drain(broken, 1, num_chunks=1)
