"""Tests for pipeline schedules: 1F1B, GPipe, interleaved."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SchedulingError
from repro.schedule.gpipe import gpipe
from repro.schedule.interleaved import (
    interleaved_1f1b,
    interleaved_bubble_fraction,
)
from repro.schedule.microbatch import (
    OpKind,
    PipelineOp,
    count_kind,
    validate_schedule,
)
from repro.schedule.pipeline import bubble_fraction, one_f_one_b


class TestValidateSchedule:
    def test_valid_schedule_passes(self):
        validate_schedule(one_f_one_b(3, 5), num_microbatches=5)

    def test_missing_backward_fails(self):
        sched = [[PipelineOp(OpKind.FORWARD, 0)]]
        with pytest.raises(SchedulingError):
            validate_schedule(sched, num_microbatches=1)

    def test_backward_before_forward_fails(self):
        sched = [[PipelineOp(OpKind.BACKWARD, 0), PipelineOp(OpKind.FORWARD, 0)]]
        with pytest.raises(SchedulingError, match="precedes"):
            validate_schedule(sched, num_microbatches=1)

    def test_duplicate_op_fails(self):
        sched = [[
            PipelineOp(OpKind.FORWARD, 0),
            PipelineOp(OpKind.FORWARD, 0),
            PipelineOp(OpKind.BACKWARD, 0),
        ]]
        with pytest.raises(SchedulingError, match="duplicate"):
            validate_schedule(sched, num_microbatches=1)

    def test_wrong_coverage_fails(self):
        sched = [[PipelineOp(OpKind.FORWARD, 5), PipelineOp(OpKind.BACKWARD, 5)]]
        with pytest.raises(SchedulingError, match="cover"):
            validate_schedule(sched, num_microbatches=1)


class TestOneFOneB:
    def test_last_stage_alternates_immediately(self):
        sched = one_f_one_b(num_stages=4, num_microbatches=6)
        last = sched[3]
        # No warm-up on the last stage: F0 B0 F1 B1 ...
        assert [str(op) for op in last[:4]] == ["F0", "B0", "F1", "B1"]

    def test_first_stage_warmup_depth(self):
        sched = one_f_one_b(num_stages=4, num_microbatches=6)
        first = sched[0]
        warmup = 0
        for op in first:
            if op.kind == OpKind.BACKWARD:
                break
            warmup += 1
        assert warmup == 4  # min(m, p - 1) + 1 steady forward before B0

    def test_each_stage_runs_all_microbatches(self):
        for stage_ops in one_f_one_b(3, 7):
            assert count_kind(stage_ops, OpKind.FORWARD) == 7
            assert count_kind(stage_ops, OpKind.BACKWARD) == 7

    def test_single_stage_degenerates(self):
        [ops] = one_f_one_b(1, 3)
        assert [str(o) for o in ops] == ["F0", "B0", "F1", "B1", "F2", "B2"]

    def test_fewer_microbatches_than_stages(self):
        sched = one_f_one_b(num_stages=8, num_microbatches=2)
        validate_schedule(sched, num_microbatches=2)

    def test_invalid_args(self):
        with pytest.raises(SchedulingError):
            one_f_one_b(0, 1)
        with pytest.raises(SchedulingError):
            one_f_one_b(1, 0)

    @given(p=st.integers(1, 8), m=st.integers(1, 24))
    @settings(max_examples=60, deadline=None)
    def test_property_always_valid(self, p, m):
        validate_schedule(one_f_one_b(p, m), num_microbatches=m)

    def test_bubble_fraction(self):
        assert bubble_fraction(2, 12) == pytest.approx(1 / 12)
        assert bubble_fraction(1, 5) == 0.0


class TestGPipe:
    def test_all_forwards_then_backwards(self):
        [ops] = gpipe(1, 3)
        kinds = [op.kind for op in ops]
        assert kinds == [OpKind.FORWARD] * 3 + [OpKind.BACKWARD] * 3

    @given(p=st.integers(1, 6), m=st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_property_always_valid(self, p, m):
        validate_schedule(gpipe(p, m), num_microbatches=m)


class TestInterleaved:
    def test_chunks_one_reduces_to_1f1b_coverage(self):
        sched = interleaved_1f1b(num_stages=2, num_microbatches=4, num_chunks=1)
        validate_schedule(sched, num_microbatches=4, num_chunks=1)

    def test_multi_chunk_coverage(self):
        sched = interleaved_1f1b(num_stages=2, num_microbatches=4, num_chunks=3)
        validate_schedule(sched, num_microbatches=4, num_chunks=3)

    def test_divisibility_enforced(self):
        with pytest.raises(SchedulingError, match="divisible"):
            interleaved_1f1b(num_stages=3, num_microbatches=4, num_chunks=2)

    def test_m_equals_p_all_warmup(self):
        sched = interleaved_1f1b(num_stages=4, num_microbatches=4, num_chunks=2)
        validate_schedule(sched, num_microbatches=4, num_chunks=2)

    @given(
        p=st.integers(1, 4),
        m_mult=st.integers(1, 4),
        v=st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_always_valid(self, p, m_mult, v):
        m = p * m_mult
        sched = interleaved_1f1b(p, m, v)
        validate_schedule(sched, num_microbatches=m, num_chunks=v)

    def test_bubble_shrinks_with_chunks(self):
        base = interleaved_bubble_fraction(4, 8, 1)
        chunked = interleaved_bubble_fraction(4, 8, 4)
        assert chunked == pytest.approx(base / 4)

    def test_invalid_args(self):
        with pytest.raises(SchedulingError):
            interleaved_1f1b(0, 1, 1)
        with pytest.raises(SchedulingError):
            interleaved_1f1b(1, 0, 1)
        with pytest.raises(SchedulingError):
            interleaved_1f1b(1, 1, 0)
