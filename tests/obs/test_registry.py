"""Unit tests for the metrics registry and its exporters."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        c = Counter("bytes_total")
        c.inc(100, link="a")
        c.inc(50, link="a")
        c.inc(7, link="b")
        assert c.value(link="a") == pytest.approx(150)
        assert c.value(link="b") == pytest.approx(7)
        assert c.value(link="missing") == 0.0
        assert c.total() == pytest.approx(157)

    def test_label_order_does_not_matter(self):
        c = Counter("ops_total")
        c.inc(1, kind="p2p", scope="send")
        c.inc(2, scope="send", kind="p2p")
        assert c.value(kind="p2p", scope="send") == pytest.approx(3)

    def test_negative_increment_rejected(self):
        c = Counter("ops_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("bad name!")


class TestGauge:
    def test_set_overwrites_and_add_accumulates(self):
        g = Gauge("tflops")
        g.set(100.0, rank=0)
        g.set(120.0, rank=0)
        assert g.value(rank=0) == pytest.approx(120.0)
        g.add(-20.0, rank=0)
        assert g.value(rank=0) == pytest.approx(100.0)


class TestHistogram:
    def test_observe_count_sum(self):
        h = HistogramMetric("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 5
        assert h.sum() == pytest.approx(56.05)

    def test_quantile_returns_bucket_bound(self):
        h = HistogramMetric("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        assert h.quantile(0.25) == pytest.approx(0.1)
        assert h.quantile(0.75) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(10.0)
        assert h.quantile(0.5, missing="labels") == 0.0

    def test_overflow_goes_to_inf_bucket(self):
        h = HistogramMetric("lat", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(1.0) == math.inf

    def test_bad_quantile_rejected(self):
        h = HistogramMetric("lat")
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_snapshot_buckets(self):
        h = HistogramMetric("lat", buckets=(0.1, 1.0))
        h.observe(0.05, op="send")
        h.observe(0.5, op="send")
        snap = h.snapshot()
        buckets = snap['{op="send"}']["buckets"]
        assert buckets == {"0.1": 1, "1.0": 1, "+Inf": 0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help")
        b = reg.counter("x_total")
        assert a is b
        assert len(reg) == 1

    def test_type_clash_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("x_total")

    def test_names_sorted_and_get(self):
        reg = MetricsRegistry()
        reg.gauge("zeta")
        reg.counter("alpha_total")
        assert reg.names() == ["alpha_total", "zeta"]
        assert reg.get("zeta") is not None
        assert reg.get("missing") is None

    def test_snapshot_and_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", "bytes moved").inc(42, link="a")
        reg.gauge("iter_seconds").set(1.5)
        snap = json.loads(reg.to_json())
        assert snap["bytes_total"]["type"] == "counter"
        assert snap["bytes_total"]["series"]['{link="a"}'] == 42
        assert snap["iter_seconds"]["series"]["{}"] == 1.5

    def test_snapshot_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total").inc(1, x="1")
            reg.counter("a_total").inc(2, z="2", a="0")
            reg.histogram("h", buckets=(1.0,)).observe(0.5, op="p")
            return reg.to_json()

        assert build() == build()


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("bytes_total", "bytes moved").inc(42, link="a")
        reg.gauge("iter_seconds").set(1.5)
        text = reg.to_prometheus()
        assert "# HELP bytes_total bytes moved" in text
        assert "# TYPE bytes_total counter" in text
        assert 'bytes_total{link="a"} 42' in text
        assert "# TYPE iter_seconds gauge" in text
        assert "iter_seconds 1.5" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.55" in text
        assert "lat_count 3" in text

    def test_empty_registry_exports_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_every_instrument_gets_help_and_type(self):
        """# HELP / # TYPE pairs appear even when the help text is empty
        (the exposition-format hardening satellite)."""
        reg = MetricsRegistry()
        reg.counter("no_help_total")
        reg.gauge("g", "a gauge")
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        text = reg.to_prometheus()
        for name in ("no_help_total", "g", "h"):
            assert f"# HELP {name}" in text
            assert f"# TYPE {name}" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(
            1, label='quote " backslash \\ newline \n end'
        )
        text = reg.to_prometheus()
        assert (
            'c_total{label="quote \\" backslash \\\\ newline \\n end"} 1'
            in text
        )
        assert "\n\n" not in text  # the raw newline never splits a line

    def test_histogram_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5, op='a"b')
        text = reg.to_prometheus()
        assert 'h_bucket{op="a\\"b",le="1.0"} 1' in text
        assert 'h_sum{op="a\\"b"} 0.5' in text
        assert 'h_count{op="a\\"b"} 1' in text

    def test_help_text_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "line one\nline two \\ slash")
        text = reg.to_prometheus()
        assert "# HELP c_total line one\\nline two \\\\ slash" in text

    def test_snapshot_keys_unchanged_by_escaping(self):
        """Escaping is exposition-only: the JSON snapshot keys keep the
        raw label values byte-for-byte."""
        reg = MetricsRegistry()
        reg.counter("c_total").inc(1, label='a"b')
        snap = reg.snapshot()
        assert snap["c_total"]["series"] == {'{label="a"b"}': 1.0}


class TestSimulationPublishesMetrics:
    def test_engine_populates_registry(self, healthy_result):
        reg = healthy_result.registry
        assert reg is not None
        names = reg.names()
        assert "comm_bytes_total" in names
        assert "comm_seconds_total" in names
        assert "sim_iteration_seconds" in names
        assert "sim_tflops_per_gpu" in names
        assert "attribution_seconds" in names
        assert reg.counter("comm_bytes_total").total() > 0
        # the exporters run end-to-end on a real registry
        assert json.loads(reg.to_json())
        assert "# TYPE comm_bytes_total counter" in reg.to_prometheus()

    def test_fault_events_counted(self, straggler_result):
        reg = straggler_result.registry
        c = reg.counter("fault_events_total")
        assert c.value(action="inject", kind="straggler") == 1
