"""Per-NIC and per-link utilization series and their counter-event export."""

import pytest

from repro.obs.timeline import (
    link_utilization,
    nic_utilization,
    utilization_counter_events,
)
from repro.simcore.trace import TraceRecorder


def _nic_trace():
    trace = TraceRecorder()
    # node 0 busy for 5s of a 10s horizon
    trace.record(0, "nic", "nic-tx:a", 0.0, 5.0, 1000,
                 dst=8, family="infiniband", src_node=0, dst_node=1)
    # node 1 busy for 1s
    trace.record(8, "nic", "nic-tx:b", 2.0, 3.0, 500,
                 dst=0, family="infiniband", src_node=1, dst_node=0)
    return trace


class TestNicUtilization:
    def test_busy_time_and_mean(self):
        series = nic_utilization(_nic_trace(), horizon=10.0, bins=10)
        assert set(series) == {"n0 infiniband", "n1 infiniband"}
        n0 = series["n0 infiniband"]
        assert n0.busy_time == pytest.approx(5.0)
        assert n0.utilization == pytest.approx(0.5)
        assert n0.total_bytes == 1000
        assert n0.transfers == 1

    def test_peak_reflects_busiest_bin(self):
        series = nic_utilization(_nic_trace(), horizon=10.0, bins=10)
        n0 = series["n0 infiniband"]
        # bins 0..4 fully busy, rest idle
        assert n0.peak == pytest.approx(1.0)
        busy_bins = [u for _, u in n0.samples if u > 0]
        assert len(busy_bins) == 5

    def test_spans_clamped_to_horizon(self):
        trace = TraceRecorder()
        trace.record(0, "nic", "nic-tx:x", 8.0, 20.0, 100,
                     dst=1, family="roce", src_node=0, dst_node=1)
        series = nic_utilization(trace, horizon=10.0, bins=10)
        assert series["n0 roce"].busy_time == pytest.approx(2.0)
        assert series["n0 roce"].utilization <= 1.0

    def test_zero_horizon_is_empty(self):
        series = nic_utilization(_nic_trace(), horizon=0.0)
        assert all(s.utilization == 0.0 for s in series.values())
        assert all(s.samples == [] for s in series.values())


class TestLinkUtilization:
    def test_directed_node_pairs(self):
        series = link_utilization(_nic_trace(), horizon=10.0, bins=10)
        assert set(series) == {"n0->n1", "n1->n0"}
        assert series["n0->n1"].busy_time == pytest.approx(5.0)

    def test_uplink_spans_form_their_own_keys(self):
        trace = TraceRecorder()
        trace.record(0, "uplink", "uplink:x", 0.0, 4.0, 100,
                     src_cluster=0, dst_cluster=1)
        series = link_utilization(trace, horizon=8.0, bins=8)
        assert list(series) == ["uplink c0<->c1"]
        assert series["uplink c0<->c1"].utilization == pytest.approx(0.5)


class TestCounterEvents:
    def test_counter_event_shape(self):
        series = nic_utilization(_nic_trace(), horizon=10.0, bins=10)
        events = utilization_counter_events(series, prefix="nic")
        assert len(events) == 20  # 2 series x 10 bins
        first = events[0]
        assert first["ph"] == "C"
        assert first["name"].startswith("nic:")
        assert 0.0 <= first["args"]["percent"] <= 100.0

    def test_timestamps_scaled_to_microseconds(self):
        series = nic_utilization(_nic_trace(), horizon=10.0, bins=10)
        events = utilization_counter_events(series)
        n0 = [e for e in events if e["name"].endswith("n0 infiniband")]
        assert n0[1]["ts"] == pytest.approx(1.0e6)


class TestEndToEnd:
    def test_simulated_run_has_nic_and_link_series(self, healthy_result):
        horizon = healthy_result.makespan
        nic = nic_utilization(healthy_result.trace, horizon)
        links = link_utilization(healthy_result.trace, horizon)
        assert nic and links
        for s in list(nic.values()) + list(links.values()):
            assert 0.0 <= s.utilization <= 1.0
            assert 0.0 <= s.peak <= 1.0
        # pipeline sends cross the two nodes in both directions
        assert any("->" in key for key in links)
