"""Shared simulated-iteration fixtures for the observability tests.

Simulations are session-scoped: the healthy, straggler, and brownout runs
are each executed once and shared across every test that inspects them.
"""

import pytest

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import ethernet_env, hybrid2_env
from repro.core.engine import TrainingSimulation
from repro.core.scheduler import HolmesScheduler
from repro.faults import FaultEvent, FaultKind, FaultPlan

GROUP = PARAM_GROUPS[1]


def _simulate(build=hybrid2_env, fault_plan=None):
    topology = build(2)
    plan = HolmesScheduler().plan(
        topology, GROUP.parallel_for(topology.world_size), GROUP.model
    )
    return TrainingSimulation(plan, GROUP.model, fault_plan=fault_plan).run()


@pytest.fixture(scope="session")
def healthy_result():
    return _simulate()


@pytest.fixture(scope="session")
def straggler_result():
    plan = FaultPlan(
        events=(
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=0, factor=3.0),
        )
    )
    return _simulate(fault_plan=plan)


@pytest.fixture(scope="session")
def ethernet_healthy_result():
    return _simulate(build=ethernet_env)


@pytest.fixture(scope="session")
def brownout_result():
    # On the all-Ethernet machine every inter-node byte rides the degraded
    # family, so the brownout must show up squarely in the p2p/collective
    # budget.  (On hybrid2_env(2) a node's RDMA NIC carries no traffic —
    # both clusters hold one node — and degrading it would be a no-op.)
    plan = FaultPlan(
        events=(
            FaultEvent(
                time=0.0, kind=FaultKind.LINK_DEGRADE, node=0,
                factor=0.1, duration=float("inf"),
            ),
        )
    )
    return _simulate(build=ethernet_env, fault_plan=plan)
