"""Run-ledger and BENCH-trend unit tests."""

import json

from repro.obs.ledger import (
    BENCH_EXEC_SCHEMA,
    BENCH_OBS_SCHEMA,
    SCHEMA,
    RunLedger,
    RunRecord,
    TrendSeries,
    bench_trend,
    load_bench_history,
    record_run,
    render_trend,
    trend_regressions,
)


# --------------------------------------------------------------------- #
# ledger records
# --------------------------------------------------------------------- #


def _record(**overrides):
    base = dict(
        kind="sweep",
        started="2026-08-08T12:00:00",
        wall_seconds=1.5,
        outcome="ok",
        sweep_digest="a" * 64,
        code_salt="salt",
        counts={"executed": 10, "cache_hits": 2},
        summary={"note": "x"},
    )
    base.update(overrides)
    return RunRecord(**base)


def test_run_record_roundtrip():
    record = _record()
    data = record.to_dict()
    assert data["schema"] == SCHEMA
    assert RunRecord.from_dict(data) == record


def test_run_record_describe_lists_counts():
    text = _record(counts={"executed": 10, "quarantined": 2}).describe()
    assert "sweep" in text
    assert "10 run" in text
    assert "2 failed" in text
    assert "a" * 12 in text


def test_ledger_append_and_tail(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    for i in range(5):
        ledger.append(_record(started=f"2026-08-0{i + 1}T00:00:00"))
    records = ledger.records()
    assert len(records) == 5
    assert [r.started for r in ledger.tail(2)] == [
        "2026-08-04T00:00:00", "2026-08-05T00:00:00",
    ]


def test_ledger_tolerates_corrupt_and_foreign_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    ledger.append(_record())
    with open(path, "a") as fh:
        fh.write("not json\n")
        fh.write(json.dumps({"schema": "other/v1"}) + "\n")
        fh.write(json.dumps({"schema": SCHEMA, "bogus": True}) + "\n")
    ledger.append(_record(kind="bench"))
    records = ledger.records()
    assert [r.kind for r in records] == ["sweep", "bench"]
    assert ledger.corrupt_lines == 3


def test_ledger_missing_file_is_empty(tmp_path):
    assert RunLedger(tmp_path / "nope.jsonl").records() == []


def test_ledger_append_failure_is_silent(tmp_path):
    target = tmp_path / "dir-not-file"
    target.mkdir()
    RunLedger(target).append(_record())  # OSError swallowed


def test_record_run_stamps_code_salt(tmp_path):
    from repro.exec.digest import CODE_VERSION_SALT

    ledger = RunLedger(tmp_path / "ledger.jsonl")
    record = record_run(
        "bench",
        started="2026-08-08T00:00:00",
        wall_seconds=2.0,
        outcome="ok",
        summary={"normalized_cell_cost": 42.0},
        ledger=ledger,
    )
    assert record.code_salt == CODE_VERSION_SALT
    assert ledger.records() == [record]


def test_record_run_accepts_path_ledger(tmp_path):
    path = tmp_path / "ledger.jsonl"
    record_run(
        "validate", started="x", wall_seconds=0.1, outcome="ok", ledger=path
    )
    assert len(RunLedger(path).records()) == 1


# --------------------------------------------------------------------- #
# BENCH trend
# --------------------------------------------------------------------- #


def _exec_doc(date, cost, micro=None):
    benches = {
        name: {"ns_per_op": value, "normalized": value}
        for name, value in (micro or {}).items()
    }
    return {
        "schema": BENCH_EXEC_SCHEMA,
        "date": date,
        "sweep": {"normalized_cell_cost": cost},
        "microbench": {"benchmarks": benches},
    }


def _obs_doc(date, tflops):
    return {
        "schema": BENCH_OBS_SCHEMA,
        "date": date,
        "cases": {
            name: {"tflops_per_gpu": value} for name, value in tflops.items()
        },
    }


def test_load_bench_history_sorts_and_filters(tmp_path):
    (tmp_path / "BENCH_2026-08-07.json").write_text(
        json.dumps(_exec_doc("2026-08-07", 110.0))
    )
    (tmp_path / "BENCH_2026-08-05.json").write_text(
        json.dumps(_exec_doc("2026-08-05", 100.0))
    )
    (tmp_path / "BENCH_bad.json").write_text("{ not json")
    (tmp_path / "BENCH_foreign.json").write_text(
        json.dumps({"schema": "else/v1"})
    )
    (tmp_path / "other.json").write_text(json.dumps(_exec_doc("2026-01-01", 1)))
    docs = load_bench_history(tmp_path)
    assert [name for name, _ in docs] == [
        "BENCH_2026-08-05.json", "BENCH_2026-08-07.json",
    ]


def test_bench_trend_merges_both_schemas():
    docs = [
        ("a.json", _exec_doc("2026-08-05", 100.0, micro={"allreduce": 10.0})),
        ("b.json", _obs_doc("2026-08-06", {"ib": 150.0})),
        ("c.json", _exec_doc("2026-08-07", 120.0, micro={"allreduce": 11.0})),
    ]
    trend = {s.name: s for s in bench_trend(docs)}
    assert set(trend) == {
        "sweep.normalized_cell_cost", "micro.allreduce", "tflops.ib",
    }
    cost = trend["sweep.normalized_cell_cost"]
    assert not cost.higher_is_better
    assert cost.points == (("2026-08-05", 100.0), ("2026-08-07", 120.0))
    assert trend["tflops.ib"].higher_is_better


def test_trend_regressions_respect_direction():
    lower = TrendSeries(
        "cost", higher_is_better=False,
        points=(("d1", 100.0), ("d2", 120.0)),
    )
    higher = TrendSeries(
        "tflops", higher_is_better=True,
        points=(("d1", 100.0), ("d2", 120.0)),
    )
    assert len(trend_regressions([lower], tolerance=0.10)) == 1
    assert trend_regressions([higher], tolerance=0.10) == []
    # inverted moves
    assert trend_regressions(
        [TrendSeries("t", True, (("d1", 100.0), ("d2", 80.0)))], 0.10
    )
    assert trend_regressions(
        [TrendSeries("c", False, (("d1", 100.0), ("d2", 80.0)))], 0.10
    ) == []


def test_trend_regressions_within_tolerance_pass():
    series = TrendSeries(
        "cost", higher_is_better=False,
        points=(("d1", 100.0), ("d2", 105.0)),
    )
    assert trend_regressions([series], tolerance=0.10) == []


def test_trend_single_point_never_regresses():
    series = TrendSeries("cost", False, (("d1", 100.0),))
    assert series.delta_fraction() is None
    assert trend_regressions([series]) == []


def test_render_trend_marks_regressing_moves():
    trend = [
        TrendSeries("cost", False, (("d1", 100.0), ("d2", 150.0))),
        TrendSeries("tflops", True, (("d1", 100.0), ("d2", 150.0))),
    ]
    text = render_trend(trend)
    assert "+50.0%!" in text  # cost up = regressing
    assert "+50.0% " in text  # tflops up = improving, no marker
    assert "▁" in text and "█" in text


def test_render_trend_empty():
    assert "no BENCH documents" in render_trend([])


def test_sparkline_flat_series():
    series = TrendSeries("x", False, (("a", 5.0), ("b", 5.0), ("c", 5.0)))
    assert len(series.sparkline()) == 3
    assert len(set(series.sparkline())) == 1


def test_committed_results_give_multi_point_trend():
    """The repo itself must ship >= 2 BENCH documents so ``repro report
    --trend`` has a trajectory at merge (acceptance criterion)."""
    from pathlib import Path

    root = Path(__file__).resolve().parents[2] / "results"
    docs = load_bench_history(root)
    assert len(docs) >= 2
    trend = bench_trend(docs)
    multi = [s for s in trend if len(s.points) >= 2]
    assert multi, "no series spans two committed BENCH documents"
    assert "series" in render_trend(trend)
