"""Critical-path attribution: unit sweeps and end-to-end budgets.

The load-bearing invariant — enforced by ``validate_report`` and asserted
here across healthy and faulted scenarios — is *completeness*: the budget
categories sum to the iteration makespan (plus overhead) within 1e-6 s.
"""

import pytest

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import HOLMES_BASE
from repro.bench.scenarios import ethernet_env, homogeneous_env, split_env
from repro.frameworks.base import simulate_framework
from repro.hardware.nic import NICType
from repro.obs.attribution import (
    Category,
    attribute_iteration,
    attribute_result,
)
from repro.simcore.trace import TraceRecorder

TOLERANCE = 1e-6


def _budget_sum(report):
    return sum(report.budget.values())


class TestSweep:
    def test_gap_becomes_bubble(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "fwd", 0.0, 2.0)
        trace.record(0, "compute", "bwd", 5.0, 8.0)
        report = attribute_iteration(trace, makespan=10.0)
        assert report.budget[Category.COMPUTE] == pytest.approx(5.0)
        assert report.budget[Category.BUBBLE] == pytest.approx(5.0)
        assert _budget_sum(report) == pytest.approx(10.0, abs=TOLERANCE)

    def test_compute_shadows_async_send(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "fwd", 0.0, 6.0)
        trace.record(0, "p2p", "send:x", 2.0, 8.0, 100, dst=1)
        report = attribute_iteration(trace, makespan=8.0)
        assert report.budget[Category.COMPUTE] == pytest.approx(6.0)
        assert report.budget[Category.P2P] == pytest.approx(2.0)

    def test_fault_outranks_compute(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "fwd", 0.0, 4.0)
        trace.record(0, "fault", "comm-rebuild", 1.0, 2.0)
        report = attribute_iteration(trace, makespan=4.0)
        assert report.budget[Category.FAULT] == pytest.approx(1.0)
        assert report.budget[Category.COMPUTE] == pytest.approx(3.0)

    def test_straggler_excess_carved_from_compute(self):
        trace = TraceRecorder()
        # 3x slowdown: 6s of wall time for 2s of healthy work
        trace.record(0, "compute", "fwd", 0.0, 6.0, slow=3.0)
        report = attribute_iteration(trace, makespan=6.0)
        assert report.budget[Category.STRAGGLER] == pytest.approx(4.0)
        assert report.budget[Category.COMPUTE] == pytest.approx(2.0)
        assert _budget_sum(report) == pytest.approx(6.0, abs=TOLERANCE)

    def test_zero_duration_spans_ignored(self):
        trace = TraceRecorder()
        trace.record(0, "fault", "inject:nic-flap", 1.0, 1.0)
        trace.record(0, "compute", "fwd", 0.0, 2.0)
        report = attribute_iteration(trace, makespan=2.0)
        assert report.budget[Category.COMPUTE] == pytest.approx(2.0)
        assert Category.FAULT not in report.budget

    def test_spans_clamped_to_horizon(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "fwd", 0.0, 100.0)
        report = attribute_iteration(trace, makespan=10.0)
        assert report.budget[Category.COMPUTE] == pytest.approx(10.0)
        assert _budget_sum(report) == pytest.approx(10.0, abs=TOLERANCE)

    def test_overhead_is_its_own_category(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "fwd", 0.0, 2.0)
        report = attribute_iteration(trace, makespan=2.0, overhead=0.5)
        assert report.budget[Category.OVERHEAD] == pytest.approx(0.5)
        assert report.iteration_time == pytest.approx(2.5)
        assert _budget_sum(report) == pytest.approx(2.5, abs=TOLERANCE)


class TestCriticalRank:
    def test_last_finishing_rank_wins(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "fwd", 0.0, 3.0)
        trace.record(1, "compute", "fwd", 0.0, 5.0)
        report = attribute_iteration(trace, makespan=5.0)
        assert report.critical_rank == 1

    def test_tie_breaks_to_lowest_rank(self):
        trace = TraceRecorder()
        trace.record(2, "compute", "fwd", 0.0, 5.0)
        trace.record(1, "compute", "fwd", 0.0, 5.0)
        report = attribute_iteration(trace, makespan=5.0)
        assert report.critical_rank == 1

    def test_synthetic_spans_excluded(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "fwd", 0.0, 3.0)
        trace.record(-1, "collective", "grads-sync", 0.0, 99.0)
        report = attribute_iteration(trace, makespan=3.0)
        assert report.critical_rank == 0


class TestEdgeCosts:
    def test_edges_aggregated_and_sorted(self):
        trace = TraceRecorder()
        trace.record(0, "p2p", "send:a0", 0.0, 1.0, 100, dst=1)
        trace.record(0, "p2p", "send:a1", 1.0, 2.0, 100, dst=1)
        trace.record(2, "p2p", "send:b0", 0.0, 5.0, 300, dst=3)
        report = attribute_iteration(trace, makespan=5.0)
        assert len(report.top_edges) == 2
        top = report.top_edges[0]
        assert (top.src, top.dst) == (2, 3)
        assert top.total_time == pytest.approx(5.0)
        second = report.top_edges[1]
        assert (second.src, second.dst) == (0, 1)
        assert second.bytes == 200
        assert second.transfers == 2


class TestEndToEndBudgets:
    """Completeness: budget == iteration time within 1e-6 s, per scenario."""

    def _assert_complete(self, result):
        report = attribute_result(result)
        assert report.iteration_time == pytest.approx(
            result.iteration_time, abs=TOLERANCE
        )
        assert _budget_sum(report) == pytest.approx(
            report.iteration_time, abs=TOLERANCE
        )
        assert all(t >= 0 for t in report.budget.values())
        return report

    def test_hybrid_budget_complete(self, healthy_result):
        report = self._assert_complete(healthy_result)
        assert report.budget[Category.COMPUTE] > 0
        assert report.top_edges, "p2p edges should be named"
        assert report.top_edges[0].transport

    @pytest.mark.parametrize(
        "build",
        [
            lambda: homogeneous_env(2, NICType.INFINIBAND),
            lambda: ethernet_env(2),
            lambda: split_env(2, NICType.ROCE),
        ],
        ids=["ib", "ethernet", "split-roce"],
    )
    def test_benchmark_scenarios_budget_complete(self, build):
        group = PARAM_GROUPS[1]
        topology = build()
        result = simulate_framework(
            HOLMES_BASE, topology, group.parallel_for(topology.world_size),
            group.model, trace_enabled=True,
        )
        self._assert_complete(result)

    def test_faulted_budget_complete(self, brownout_result):
        self._assert_complete(brownout_result)

    def test_per_rank_budgets_complete(self, healthy_result):
        report = attribute_result(healthy_result)
        for rank, budget in report.per_rank.items():
            assert sum(budget.values()) == pytest.approx(
                report.makespan, abs=TOLERANCE
            ), f"rank {rank} budget incomplete"

    def test_per_stage_budgets_cover_all_stages(self, healthy_result):
        report = attribute_result(healthy_result)
        stages = set(report.per_stage)
        assert stages == {0, 1}


class TestFaultDominance:
    """A deliberately injected fault dominates its attribution category."""

    def test_straggler_dominates(self, healthy_result, straggler_result):
        healthy = attribute_result(healthy_result)
        faulted = attribute_result(straggler_result)
        assert healthy.budget.get(Category.STRAGGLER, 0.0) == pytest.approx(0.0)
        assert faulted.dominant() is Category.STRAGGLER
        # a 3x straggler turns ~2/3 of its compute wall time into loss
        assert faulted.fraction(Category.STRAGGLER) > 0.4

    def test_link_brownout_inflates_p2p(
        self, ethernet_healthy_result, brownout_result
    ):
        healthy = attribute_result(ethernet_healthy_result)
        faulted = attribute_result(brownout_result)
        assert faulted.comm_time > 1.5 * healthy.comm_time
        assert faulted.iteration_time > healthy.iteration_time

    def test_dominance_reflected_in_metrics(self, straggler_result):
        # bubble/comm fractions surface in IterationMetrics and __str__
        metrics = straggler_result.metrics
        assert 0.0 <= metrics.bubble_fraction < 1.0
        assert 0.0 <= metrics.comm_fraction < 1.0
        text = str(metrics)
        assert "bubble=" in text and "comm=" in text


class TestReportShapes:
    def test_to_dict_and_describe(self, healthy_result):
        report = attribute_result(healthy_result)
        d = report.to_dict()
        assert set(d["budget"]) == {str(c) for c in Category}
        assert d["iteration_time"] == pytest.approx(report.iteration_time)
        assert d["top_edges"][0]["seconds"] > 0
        text = report.describe()
        assert "time-loss budget" in text
        assert "compute" in text
