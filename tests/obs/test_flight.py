"""Flight-recorder unit tests: event log read/write, tail semantics,
campaign-state reduction, progress rendering, textfile export."""

import json
import os
import threading
import time

import pytest

from repro.obs.flight import (
    EVENT_KINDS,
    SCHEMA,
    CampaignState,
    FlightLog,
    FlightRecorder,
    SweepProgress,
    TextfileExporter,
    events_path_for,
    follow,
    parse_event_line,
    read_events,
    scenario_story,
    summarize_events,
)
from repro.obs.registry import MetricsRegistry


# --------------------------------------------------------------------- #
# recorder / log round-trip
# --------------------------------------------------------------------- #


def test_recorder_writes_schema_tagged_jsonl(tmp_path):
    path = tmp_path / "ev.jsonl"
    with FlightRecorder(path, clock=lambda: 123.456) as rec:
        rec.emit("sweep-begin", total=3, jobs=2)
        rec.emit("scenario-finished", digest="d" * 64, seconds=0.5)
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["schema"] == SCHEMA
    assert first["event"] == "sweep-begin"
    assert first["src"] == "supervisor"
    assert first["pid"] == os.getpid()
    assert first["ts"] == 123.456
    assert first["total"] == 3


def test_recorder_appends_across_instances(tmp_path):
    """Two recorders on the same path (supervisor + worker in real life)
    interleave whole lines, never bytes."""
    path = tmp_path / "ev.jsonl"
    a = FlightRecorder(path, source="supervisor")
    b = FlightRecorder(path, source="worker")
    a.emit("sweep-begin", total=1)
    b.emit("worker-spawn")
    a.emit("sweep-end")
    a.close()
    b.close()
    events = read_events(path)
    assert [e["event"] for e in events] == [
        "sweep-begin", "worker-spawn", "sweep-end",
    ]
    assert {e["src"] for e in events} == {"supervisor", "worker"}


def test_recorder_io_failure_disables_not_raises(tmp_path):
    rec = FlightRecorder(tmp_path / "sub" / "ev.jsonl")
    rec.emit("sweep-begin")
    os.chmod(tmp_path / "sub" / "ev.jsonl", 0o444)
    # closing the fd and forcing a reopen on a read-only file must not raise
    rec.close()
    rec._fd = None
    rec._dead = False
    try:
        os.chmod(tmp_path / "sub", 0o555)
        rec.emit("sweep-end")  # may or may not land; must not raise
    finally:
        os.chmod(tmp_path / "sub", 0o755)


def test_recorder_increments_registry_counter(tmp_path):
    registry = MetricsRegistry()
    rec = FlightRecorder(tmp_path / "ev.jsonl", registry=registry)
    rec.emit("cache-hit")
    rec.emit("cache-hit")
    rec.close()
    assert registry.counter("flight_events_total").value(event="cache-hit") == 2


def test_flight_log_fans_out_and_finds_record_path(tmp_path):
    rec = FlightRecorder(tmp_path / "ev.jsonl")
    progress = SweepProgress(stream=_NullStream())
    log = FlightLog([rec, progress, None])
    assert log.record_path == rec.path
    log.emit("sweep-begin", total=2, jobs=1)
    log.emit("sweep-end")
    log.close()
    assert [e["event"] for e in read_events(rec.path)] == [
        "sweep-begin", "sweep-end",
    ]
    assert progress.state.finished


def test_events_path_for_rides_alongside_journal(tmp_path):
    journal = tmp_path / "journal" / ("a" * 64 + ".jsonl")
    assert events_path_for(journal) == (
        tmp_path / "journal" / ("a" * 64 + ".events.jsonl")
    )


# --------------------------------------------------------------------- #
# reading: truncation tolerance, foreign lines, follow
# --------------------------------------------------------------------- #


def test_parse_event_line_rejects_garbage_and_foreign_schemas():
    assert parse_event_line("") is None
    assert parse_event_line("not json") is None
    assert parse_event_line('{"schema": "other/v1", "event": "x"}') is None
    assert parse_event_line(json.dumps({"schema": SCHEMA, "event": 3})) is None
    good = json.dumps({"schema": SCHEMA, "event": "cache-hit"})
    assert parse_event_line(good)["event"] == "cache-hit"


def test_read_events_drops_unterminated_tail(tmp_path):
    path = tmp_path / "ev.jsonl"
    full = json.dumps({"schema": SCHEMA, "event": "sweep-begin"}) + "\n"
    partial = json.dumps({"schema": SCHEMA, "event": "sweep-end"})[:-4]
    path.write_text(full + partial)
    events = read_events(path)
    assert [e["event"] for e in events] == ["sweep-begin"]
    # once the writer finishes the line, the reader sees it
    with open(path, "a") as fh:
        fh.write(json.dumps({"schema": SCHEMA, "event": "sweep-end"})[-4:] + "\n")
    assert [e["event"] for e in read_events(path)] == [
        "sweep-begin", "sweep-end",
    ]


def test_read_events_missing_file_is_empty(tmp_path):
    assert read_events(tmp_path / "nope.jsonl") == []


def test_follow_yields_events_as_they_land(tmp_path):
    path = tmp_path / "ev.jsonl"
    path.write_text("")
    seen = []
    done = threading.Event()

    def writer():
        rec = FlightRecorder(path)
        for i in range(5):
            rec.emit("scenario-finished", index=i)
            time.sleep(0.02)
        rec.emit("sweep-end")
        rec.close()
        done.set()

    thread = threading.Thread(target=writer)
    thread.start()
    for record in follow(path, poll=0.02, max_seconds=10.0):
        seen.append(record["event"])
        if record["event"] == "sweep-end":
            break
    thread.join()
    assert seen == ["scenario-finished"] * 5 + ["sweep-end"]


def test_follow_respects_max_seconds(tmp_path):
    path = tmp_path / "ev.jsonl"
    path.write_text("")
    t0 = time.monotonic()
    assert list(follow(path, poll=0.05, max_seconds=0.2)) == []
    assert time.monotonic() - t0 < 5.0


# --------------------------------------------------------------------- #
# concurrent append + read (satellite: tail semantics under load)
# --------------------------------------------------------------------- #


def test_concurrent_appenders_never_corrupt_lines(tmp_path):
    """Many threads appending through separate recorders (the worst case
    the multi-process log sees) produce only whole, parseable lines."""
    path = tmp_path / "ev.jsonl"
    n_threads, n_events = 8, 50

    def appender(tid):
        rec = FlightRecorder(path, source=f"worker{tid}")
        for i in range(n_events):
            rec.emit("scenario-finished", digest=f"{tid}:{i}", payload="x" * 200)
        rec.close()

    threads = [
        threading.Thread(target=appender, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    # read continuously while writers run: never raises, only whole events
    while any(t.is_alive() for t in threads):
        for event in read_events(path):
            assert event["event"] == "scenario-finished"
    for t in threads:
        t.join()
    events = read_events(path)
    assert len(events) == n_threads * n_events
    assert len({e["digest"] for e in events}) == n_threads * n_events


# --------------------------------------------------------------------- #
# campaign-state reduction
# --------------------------------------------------------------------- #


def _feed(state, event, **fields):
    state.on_event(event, fields)


def test_campaign_state_counts_and_eta():
    state = CampaignState()
    _feed(state, "sweep-begin", total=10, jobs=2, ts=100.0)
    for _ in range(2):
        _feed(state, "cache-hit")
    for i in range(4):
        _feed(state, "scenario-finished", seconds=2.0)
    _feed(state, "scenario-retried")
    _feed(state, "scenario-quarantined")
    assert state.completed() == 6
    assert state.done() == 7
    assert state.remaining() == 3
    assert state.mean_scenario_seconds() == pytest.approx(2.0)
    assert state.eta_seconds() == pytest.approx(3 * 2.0 / 2)
    line = state.render_line()
    assert "7/10" in line
    assert "1 FAILED" in line
    assert "retries=1" in line
    assert "eta" in line


def test_campaign_state_tracks_workers_from_heartbeats():
    state = CampaignState()
    _feed(state, "worker-spawn", pid=101, busy="", completed=0,
          uptime=0.0, busy_seconds=0.0, ts=1.0)
    _feed(state, "worker-heartbeat", pid=101, busy="d" * 64, completed=3,
          uptime=10.0, busy_seconds=8.0, ts=11.0)
    assert state.worker_utilization(101) == pytest.approx(0.8)
    lines = state.render_workers(now=12.0)
    assert len(lines) == 1
    assert "worker 101" in lines[0]
    assert "busy" in lines[0]
    assert "3 completed" in lines[0]
    assert "heartbeat 1.0s ago" in lines[0]


def test_campaign_state_terminal_events():
    state = CampaignState()
    _feed(state, "sweep-begin", total=1, jobs=1)
    _feed(state, "sweep-interrupted")
    assert state.interrupted and not state.finished
    assert "INTERRUPTED" in state.render_line()
    state2 = CampaignState()
    _feed(state2, "sweep-end")
    assert state2.finished
    assert "done" in state2.render_line()


def test_event_kinds_cover_reducer():
    """Every kind the executor emits is a known kind (guards against a
    typo'd emit site silently never reducing)."""
    state = CampaignState()
    for kind in EVENT_KINDS:
        state.on_event(kind, {})  # must not raise


# --------------------------------------------------------------------- #
# progress renderer / textfile exporter
# --------------------------------------------------------------------- #


class _NullStream:
    def __init__(self):
        self.writes = []

    def write(self, text):
        self.writes.append(text)

    def flush(self):
        pass

    def isatty(self):
        return False


def test_progress_throttles_and_always_renders_final():
    stream = _NullStream()
    clock = [0.0]
    progress = SweepProgress(stream=stream, interval=1.0, clock=lambda: clock[0])
    progress.on_event("sweep-begin", {"total": 100, "jobs": 2})
    for _ in range(50):  # same instant: all throttled after the first
        progress.on_event("scenario-finished", {"seconds": 0.1})
    assert len(stream.writes) == 1
    progress.on_event("sweep-end", {})
    progress.close()
    assert len(stream.writes) == 2
    assert "done" in stream.writes[-1]


def test_progress_heartbeats_never_force_redraw():
    stream = _NullStream()
    progress = SweepProgress(stream=stream, interval=0.0)
    for _ in range(10):
        progress.on_event("worker-heartbeat", {"pid": 1})
    assert stream.writes == []


def test_textfile_exporter_atomic_refresh(tmp_path):
    registry = MetricsRegistry()
    registry.counter("exec_scenarios_total", "scenarios run").inc(7)
    path = tmp_path / "repro.prom"
    clock = [0.0]
    exporter = TextfileExporter(path, registry, interval=10.0,
                                clock=lambda: clock[0])
    exporter.on_event("sweep-begin", {"total": 4, "jobs": 2})
    text = path.read_text()
    assert 'sweep_progress{phase="total"} 4' in text
    assert "exec_scenarios_total 7" in text
    assert "# TYPE sweep_progress gauge" in text
    # throttled: same instant refreshes are skipped...
    exporter.on_event("scenario-finished", {})
    assert 'phase="completed"} 0' in path.read_text()
    # ...but the terminal event always refreshes
    exporter.on_event("sweep-end", {})
    assert 'phase="completed"} 1' in path.read_text()
    assert not path.with_name(path.name + ".tmp").exists()
    exporter.close()


# --------------------------------------------------------------------- #
# story reconstruction helpers
# --------------------------------------------------------------------- #


def test_scenario_story_and_summary(tmp_path):
    rec = FlightRecorder(tmp_path / "ev.jsonl")
    d1, d2 = "a" * 64, "b" * 64
    rec.emit("scenario-dispatched", digest=d1)
    rec.emit("scenario-dispatched", digest=d2)
    rec.emit("scenario-retried", digest=d1, kind="error")
    rec.emit("scenario-quarantined", digest=d1, kind="error", attempts=2)
    rec.emit("scenario-finished", digest=d2)
    rec.close()
    events = read_events(rec.path)
    story = scenario_story(events, d1)
    assert [e["event"] for e in story] == [
        "scenario-dispatched", "scenario-retried", "scenario-quarantined",
    ]
    assert summarize_events(events) == {
        "scenario-dispatched": 2,
        "scenario-retried": 1,
        "scenario-quarantined": 1,
        "scenario-finished": 1,
    }
