"""The profile report: build, validate, render — healthy and faulted."""

import json

import pytest

from repro.obs.report import (
    REPORT_SCHEMA,
    build_report,
    render_report,
    validate_report,
)


@pytest.fixture(scope="module")
def healthy_report(healthy_result):
    report = build_report(
        healthy_result,
        scenario={"env": "hybrid", "nodes": 2, "group": 1},
        trace_path="trace.json",
    )
    validate_report(report)
    return report


class TestBuildReport:
    def test_schema_and_sections(self, healthy_report):
        assert healthy_report["schema"] == REPORT_SCHEMA
        for section in ("scenario", "metrics", "attribution", "utilization",
                        "registry"):
            assert section in healthy_report

    def test_metrics_section(self, healthy_report):
        metrics = healthy_report["metrics"]
        assert metrics["iteration_seconds"] > 0
        assert metrics["tflops_per_gpu"] > 0
        assert metrics["num_gpus"] == 16
        assert metrics["aborted"] is False

    def test_report_is_json_serialisable(self, healthy_report):
        round_tripped = json.loads(json.dumps(healthy_report))
        validate_report(round_tripped)

    def test_faulted_report_validates(self, straggler_result):
        report = build_report(straggler_result, scenario={"faulted": True})
        validate_report(report)
        assert report["faults"]["degraded"] is True
        assert report["faults"]["events"]

    def test_brownout_report_validates(self, brownout_result):
        report = build_report(brownout_result)
        validate_report(report)


class TestValidateReport:
    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="must be a dict"):
            validate_report([])

    def test_rejects_wrong_schema(self, healthy_report):
        bad = dict(healthy_report, schema="something/else")
        with pytest.raises(ValueError, match="unknown report schema"):
            validate_report(bad)

    def test_rejects_missing_section(self, healthy_report):
        bad = {k: v for k, v in healthy_report.items() if k != "attribution"}
        with pytest.raises(ValueError, match="attribution"):
            validate_report(bad)

    def test_rejects_non_numeric_metric(self, healthy_report):
        bad = json.loads(json.dumps(healthy_report))
        bad["metrics"]["tflops_per_gpu"] = "fast"
        with pytest.raises(ValueError, match="tflops_per_gpu"):
            validate_report(bad)

    def test_rejects_unknown_category(self, healthy_report):
        bad = json.loads(json.dumps(healthy_report))
        bad["attribution"]["budget"]["gremlins"] = 1.0
        with pytest.raises(ValueError, match="unknown attribution categories"):
            validate_report(bad)

    def test_rejects_incomplete_budget(self, healthy_report):
        bad = json.loads(json.dumps(healthy_report))
        bad["attribution"]["budget"]["compute"] += 1.0
        with pytest.raises(ValueError, match="does not sum"):
            validate_report(bad)

    def test_rejects_out_of_range_utilization(self, healthy_report):
        bad = json.loads(json.dumps(healthy_report))
        key = next(iter(bad["utilization"]["nic"]))
        bad["utilization"]["nic"][key]["utilization"] = 1.7
        with pytest.raises(ValueError, match="must be in \\[0, 1\\]"):
            validate_report(bad)


class TestRenderReport:
    def test_human_tables(self, healthy_report):
        text = render_report(healthy_report)
        assert "time-loss budget" in text
        assert "compute" in text
        assert "NIC transmit utilization" in text
        assert "slowest p2p edges" in text
        assert "chrome trace: trace.json" in text

    def test_faulted_render_lists_events(self, straggler_result):
        report = build_report(straggler_result)
        validate_report(report)
        text = render_report(report)
        assert "faults:" in text
        assert "straggler" in text
