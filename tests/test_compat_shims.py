"""The keyword-only constructor migration: shims warn, canonical forms don't."""

import warnings

import pytest

from repro.core.engine import TrainingSimulation
from repro.core.optimizer import STRATEGIES
from repro.core.scheduler import HolmesScheduler
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.model.config import GPTConfig
from repro.network.costmodel import CostModelConfig
from repro.network.fabric import Fabric
from repro.nn.parallel_train import SingleTrainer
from repro.nn.model import TinyGPTConfig
from repro.parallel.degrees import ParallelConfig
from repro.simcore.engine import SimEngine

TOPO = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)
MODEL = GPTConfig(num_layers=8, hidden_size=512, num_attention_heads=8,
                  seq_length=256, vocab_size=4096)
NN_CONFIG = TinyGPTConfig(vocab_size=17, seq_length=4, hidden_size=8,
                          num_blocks=1, num_heads=2)


def small_plan():
    parallel = ParallelConfig(tensor=1, pipeline=2, data=2,
                              micro_batch_size=2, global_batch_size=16)
    return HolmesScheduler().plan(TOPO, parallel, MODEL)


class TestFabricShims:
    def test_canonical_keywords_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Fabric(TOPO, cost_config=CostModelConfig(), engine=SimEngine())

    def test_positional_use_warns_and_still_works(self):
        cfg = CostModelConfig(comm_rebuild_time=1.25)
        with pytest.warns(DeprecationWarning, match="cost_config"):
            fabric = Fabric(TOPO, cfg)
        assert fabric.cost_model.config.comm_rebuild_time == 1.25

    def test_legacy_config_spelling_warns(self):
        cfg = CostModelConfig(comm_rebuild_time=2.5)
        with pytest.warns(DeprecationWarning, match="cost_config"):
            fabric = Fabric(TOPO, config=cfg)
        assert fabric.cost_model.config.comm_rebuild_time == 2.5

    def test_legacy_metrics_spelling_warns(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        with pytest.warns(DeprecationWarning, match="metrics_registry"):
            fabric = Fabric(TOPO, metrics=registry)
        assert fabric.metrics is registry

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="both"):
            Fabric(TOPO, config=CostModelConfig(), cost_config=CostModelConfig())

    def test_positional_overflow_rejected(self):
        with pytest.raises(TypeError, match="positional"):
            Fabric(TOPO, None, None, False, None, None, "extra")

    def test_positional_keyword_collision_rejected(self):
        with pytest.raises(TypeError, match="multiple values"), warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            Fabric(TOPO, CostModelConfig(), cost_config=CostModelConfig())


class TestTrainingSimulationShims:
    def test_canonical_keywords_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            TrainingSimulation(small_plan(), MODEL, schedule="gpipe")

    def test_positional_use_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="optimizer, schedule"):
            sim = TrainingSimulation(
                small_plan(), MODEL, STRATEGIES["allreduce"], "gpipe"
            )
        assert sim.schedule_kind == "gpipe"
        assert sim.optimizer is STRATEGIES["allreduce"]

    def test_positional_matches_keyword_result(self):
        plan = small_plan()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            positional = TrainingSimulation(
                plan, MODEL, STRATEGIES["distributed"], "gpipe"
            ).run()
        keyword = TrainingSimulation(
            plan, MODEL, optimizer=STRATEGIES["distributed"], schedule="gpipe"
        ).run()
        assert positional.iteration_time == keyword.iteration_time


class TestFaultInjectorShims:
    def _fabric(self):
        return Fabric(TOPO, engine=SimEngine())

    def _plan(self):
        return FaultPlan(
            events=(FaultEvent(time=0.1, kind=FaultKind.NIC_FLAP, node=0, duration=0.2),)
        )

    def test_canonical_keywords_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FaultInjector(self._plan(), self._fabric(), trace=None)

    def test_positional_trace_warns(self):
        from repro.simcore.trace import TraceRecorder

        trace = TraceRecorder(enabled=True)
        with pytest.warns(DeprecationWarning, match="trace"):
            injector = FaultInjector(self._plan(), self._fabric(), trace)
        assert injector.trace is trace


class TestKnobRenames:
    def test_num_microbatches_is_canonical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trainer = SingleTrainer(NN_CONFIG, num_microbatches=2)
        assert trainer.num_microbatches == 2

    def test_legacy_micro_batches_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="num_microbatches"):
            trainer = SingleTrainer(NN_CONFIG, micro_batches=2)
        assert trainer.num_microbatches == 2

    def test_micro_batches_attribute_alias_warns(self):
        trainer = SingleTrainer(NN_CONFIG, num_microbatches=3)
        with pytest.warns(DeprecationWarning, match="num_microbatches"):
            assert trainer.micro_batches == 3

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="both"):
            SingleTrainer(NN_CONFIG, num_microbatches=2, micro_batches=2)

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(TypeError, match="unexpected"):
            SingleTrainer(NN_CONFIG, microbatches=2)
