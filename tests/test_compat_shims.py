"""The PR-5 deprecation shims are gone: canonical keyword forms work
silently, legacy positional/renamed forms raise ``TypeError``, and
``import repro._compat`` warns-then-fails cleanly."""

import importlib
import sys
import warnings

import pytest

from repro.core.engine import TrainingSimulation
from repro.core.optimizer import STRATEGIES
from repro.core.scheduler import HolmesScheduler
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.model.config import GPTConfig
from repro.network.costmodel import CostModelConfig
from repro.network.fabric import Fabric
from repro.nn.parallel_train import SingleTrainer
from repro.nn.model import TinyGPTConfig
from repro.parallel.degrees import ParallelConfig
from repro.simcore.engine import SimEngine

TOPO = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)
MODEL = GPTConfig(num_layers=8, hidden_size=512, num_attention_heads=8,
                  seq_length=256, vocab_size=4096)
NN_CONFIG = TinyGPTConfig(vocab_size=17, seq_length=4, hidden_size=8,
                          num_blocks=1, num_heads=2)


def small_plan():
    parallel = ParallelConfig(tensor=1, pipeline=2, data=2,
                              micro_batch_size=2, global_batch_size=16)
    return HolmesScheduler().plan(TOPO, parallel, MODEL)


class TestCompatModuleRemoved:
    def _import_fresh(self):
        sys.modules.pop("repro._compat", None)
        return importlib.import_module("repro._compat")

    def test_import_warns_then_fails(self):
        with pytest.warns(DeprecationWarning, match="repro._compat has been removed"):
            with pytest.raises(ImportError, match="canonical spellings"):
                self._import_fresh()

    def test_failed_import_is_not_cached(self):
        # A failed import must not leave a half-initialised module behind:
        # the next import attempt warns and fails identically.
        for _ in range(2):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                with pytest.raises(ImportError):
                    self._import_fresh()
        assert "repro._compat" not in sys.modules

    def test_no_internal_caller_imports_the_tombstone(self):
        # Everything below repro imports cleanly without tripping the
        # tombstone (the import above already proved most of the tree).
        for name in ("repro.core.engine", "repro.network.fabric",
                     "repro.faults.injector", "repro.nn.parallel_train"):
            module = importlib.import_module(name)
            assert "_compat" not in (getattr(module, "__file__", "") or "")


class TestFabricKeywordOnly:
    def test_canonical_keywords_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fabric = Fabric(TOPO, cost_config=CostModelConfig(comm_rebuild_time=1.25),
                            engine=SimEngine())
        assert fabric.cost_model.config.comm_rebuild_time == 1.25

    def test_positional_use_raises(self):
        with pytest.raises(TypeError):
            Fabric(TOPO, CostModelConfig())

    def test_legacy_config_spelling_raises(self):
        with pytest.raises(TypeError):
            Fabric(TOPO, config=CostModelConfig())

    def test_legacy_metrics_spelling_raises(self):
        from repro.obs.registry import MetricsRegistry

        with pytest.raises(TypeError):
            Fabric(TOPO, metrics=MetricsRegistry())


class TestTrainingSimulationKeywordOnly:
    def test_canonical_keywords_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sim = TrainingSimulation(small_plan(), MODEL, schedule="gpipe",
                                     optimizer=STRATEGIES["allreduce"])
        assert sim.schedule_kind == "gpipe"
        assert sim.optimizer is STRATEGIES["allreduce"]

    def test_positional_use_raises(self):
        with pytest.raises(TypeError):
            TrainingSimulation(small_plan(), MODEL, STRATEGIES["allreduce"], "gpipe")


class TestFaultInjectorKeywordOnly:
    def _fabric(self):
        return Fabric(TOPO, engine=SimEngine())

    def _plan(self):
        return FaultPlan(
            events=(FaultEvent(time=0.1, kind=FaultKind.NIC_FLAP, node=0, duration=0.2),)
        )

    def test_canonical_keywords_are_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FaultInjector(self._plan(), self._fabric(), trace=None)

    def test_positional_trace_raises(self):
        from repro.simcore.trace import TraceRecorder

        with pytest.raises(TypeError):
            FaultInjector(self._plan(), self._fabric(), TraceRecorder(enabled=True))


class TestKnobRenamesRemoved:
    def test_num_microbatches_is_canonical(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            trainer = SingleTrainer(NN_CONFIG, num_microbatches=2)
        assert trainer.num_microbatches == 2

    def test_legacy_micro_batches_raises(self):
        with pytest.raises(TypeError):
            SingleTrainer(NN_CONFIG, micro_batches=2)

    def test_micro_batches_attribute_alias_removed(self):
        trainer = SingleTrainer(NN_CONFIG, num_microbatches=3)
        with pytest.raises(AttributeError):
            trainer.micro_batches
