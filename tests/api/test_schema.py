"""The versioned wire documents: ``repro.api.request/v1`` round-trips
scenarios exactly, ``repro.api.result/v1`` round-trips every result type
exactly (floats included), and validation is strict — unknown keys are a
hard error on both families, so a v2 document can never half-parse as v1."""

import json

import pytest

from repro.api import RunResult, Scenario, run
from repro.api.schema import (
    REQUEST_SCHEMA,
    RESULT_SCHEMA,
    SchemaError,
    build_request,
    build_result,
    check_keys,
    result_from_document,
    result_to_document,
    validate_request,
    validate_result,
)

SCENARIO = Scenario.from_group(
    "ib", 2, 1, tensor=1, pipeline=1, data=0, global_batch_size=0,
    num_microbatches=2, trace_enabled=False, fidelity="auto",
)


def wire(doc):
    """The exact bytes a daemon or cache would emit for a document."""
    return json.dumps(doc, sort_keys=True, allow_nan=False)


class TestRequestDocuments:
    def test_build_and_validate_round_trip(self):
        doc = build_request("run", [SCENARIO], {"priority": 2})
        assert doc["schema"] == REQUEST_SCHEMA
        kind, scenarios, options = validate_request(doc)
        assert kind == "run"
        assert scenarios == [SCENARIO]
        assert options == {"priority": 2}

    def test_canonical_mapping_is_accepted_as_scenario(self):
        doc = build_request("run", [SCENARIO.canonical()], {})
        _, scenarios, _ = validate_request(doc)
        assert scenarios == [SCENARIO]

    def test_survives_json_round_trip(self):
        doc = build_request("sweep", [SCENARIO, SCENARIO], {"fidelity": "auto"})
        kind, scenarios, options = validate_request(json.loads(wire(doc)))
        assert kind == "sweep" and len(scenarios) == 2
        assert scenarios[0].digest() == SCENARIO.digest()
        assert options == {"fidelity": "auto"}

    def test_run_takes_exactly_one_scenario(self):
        with pytest.raises(SchemaError, match="exactly one"):
            build_request("run", [SCENARIO, SCENARIO])
        doc = build_request("sweep", [SCENARIO, SCENARIO])
        doc["kind"] = "plan"
        with pytest.raises(SchemaError, match="exactly one"):
            validate_request(doc)

    def test_unknown_option_rejected_both_ways(self):
        with pytest.raises(SchemaError, match="unknown keys"):
            build_request("run", [SCENARIO], {"fidelity": "auto"})
        doc = build_request("sweep", [SCENARIO], {})
        doc["options"] = {"retries": 3}
        with pytest.raises(SchemaError, match="unknown keys"):
            validate_request(doc)

    def test_unknown_top_level_key_rejected(self):
        doc = build_request("run", [SCENARIO], {})
        doc["deadline"] = "soon"
        with pytest.raises(SchemaError, match="unknown keys"):
            validate_request(doc)

    def test_wrong_schema_tag_rejected(self):
        doc = build_request("run", [SCENARIO], {})
        doc["schema"] = "repro.api.request/v2"
        with pytest.raises(SchemaError, match="request/v2"):
            validate_request(doc)

    def test_invalid_canonical_scenario_is_schema_error(self):
        doc = build_request("run", [SCENARIO], {})
        doc["scenarios"] = [{"env": "ib"}]
        with pytest.raises(SchemaError, match="scenarios\\[0\\]"):
            validate_request(doc)

    def test_empty_scenarios_rejected(self):
        with pytest.raises(SchemaError, match="no scenarios"):
            build_request("sweep", [])


class TestResultEnvelope:
    def test_build_and_validate(self):
        doc = build_result("run", {"x": 1})
        assert doc["schema"] == RESULT_SCHEMA
        assert validate_result(doc) == {"x": 1}
        assert validate_result(doc, kind="run") == {"x": 1}

    def test_kind_mismatch_rejected(self):
        doc = build_result("sweep", {})
        with pytest.raises(SchemaError, match="not 'run'"):
            validate_result(doc, kind="run")

    def test_extra_envelope_key_rejected(self):
        doc = build_result("run", {})
        doc["timing"] = 1.0
        with pytest.raises(SchemaError, match="unknown keys"):
            validate_result(doc)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="not one of"):
            build_result("audit", {})
        with pytest.raises(SchemaError, match="not one of"):
            validate_result({"schema": RESULT_SCHEMA, "kind": "audit"})


class TestRunResultDocuments:
    def test_exact_round_trip_through_json(self):
        result = run(SCENARIO)
        doc = json.loads(wire(result.to_document()))
        parsed = RunResult.from_document(doc)
        assert parsed == result
        # and the re-serialised document is byte-identical
        assert wire(parsed.to_document()) == wire(result.to_document())

    def test_dispatch_helpers(self):
        result = run(SCENARIO)
        doc = result_to_document(result)
        assert doc["kind"] == "run"
        assert result_from_document(doc) == result

    def test_dispatch_rejects_unknown_types(self):
        with pytest.raises(SchemaError, match="no to_document"):
            result_to_document(object())
        with pytest.raises(SchemaError, match="not one of"):
            result_from_document({"schema": RESULT_SCHEMA, "kind": "x"})

    def test_from_dict_rejects_unknown_keys(self):
        result = run(SCENARIO)
        data = result.to_dict()
        data["p99_latency"] = 1.0
        with pytest.raises(ValueError, match="unknown keys"):
            RunResult.from_dict(data)

    def test_from_document_rejects_unknown_payload_keys(self):
        result = run(SCENARIO)
        doc = result.to_document()
        doc["result"] = dict(doc["result"], p99_latency=1.0)
        with pytest.raises((SchemaError, ValueError), match="unknown keys"):
            RunResult.from_document(doc)


class TestSweepOutcomeDocuments:
    def test_exact_round_trip(self):
        from repro.api import sweep

        outcome = sweep([SCENARIO, SCENARIO], on_error="collect")
        doc = json.loads(wire(outcome.to_document()))
        parsed = result_from_document(doc)
        assert [r for r in parsed.results] == [r for r in outcome.results]
        assert parsed.stats == outcome.stats
        assert wire(parsed.to_document()) == wire(outcome.to_document())

    def test_unknown_payload_key_rejected(self):
        from repro.api import sweep

        doc = sweep([SCENARIO], on_error="collect").to_document()
        doc["sweep"] = dict(doc["sweep"], quarantine=[])
        with pytest.raises(SchemaError, match="unknown keys"):
            result_from_document(doc)


class TestPlanResultDocuments:
    def test_exact_round_trip(self):
        from repro import api

        plan = api.plan(SCENARIO, budget=2, top_k=1, fidelity="auto")
        doc = json.loads(wire(plan.to_document()))
        parsed = result_from_document(doc)
        assert parsed.best.digest == plan.best.digest
        assert parsed.best.label == plan.best.label
        assert wire(parsed.to_document()) == wire(plan.to_document())

    def test_unknown_payload_key_rejected(self):
        from repro import api

        doc = api.plan(SCENARIO, budget=2, top_k=1, fidelity="auto").to_document()
        doc["plan"] = dict(doc["plan"], winner=0)
        with pytest.raises(SchemaError, match="unknown keys"):
            result_from_document(doc)


class TestCheckKeys:
    def test_missing_required(self):
        with pytest.raises(SchemaError, match="missing required"):
            check_keys({"a": 1}, required=("a", "b"), where="here")

    def test_optional_tolerated_absent_and_present(self):
        check_keys({"a": 1}, required=("a",), optional=("b",), where="here")
        check_keys({"a": 1, "b": 2}, required=("a",), optional=("b",), where="here")

    def test_non_mapping_rejected(self):
        with pytest.raises(SchemaError, match="expected a mapping"):
            check_keys([1], required=(), where="here")


class TestCacheQuarantinesUnknownKeyEntries:
    def test_newer_cache_entry_is_quarantined_not_crashed(self, tmp_path):
        """A cache entry written by a future version (extra keys) must be
        treated as corrupt — quarantined and re-executed — not crash the
        reader."""
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        result = run(SCENARIO)
        cache.put(SCENARIO, result)
        assert cache.get(SCENARIO) == result
        # corrupt the entry the way a newer writer would: add a field
        path = cache.path_for(SCENARIO.digest())
        data = json.loads(path.read_text())
        data["result"]["p99_latency"] = 1.0
        path.write_text(json.dumps(data))
        assert cache.get(SCENARIO) is None  # quarantined, not raised
        assert cache.get(SCENARIO) is None  # stays gone
