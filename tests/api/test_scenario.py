"""Scenario identity: validation, normalization, digests, round-trips."""

import pytest

from repro.api import FRAMEWORK_PRESETS, Scenario
from repro.errors import ConfigurationError
from repro.exec.digest import canonical_json, scenario_digest
from repro.faults import FaultEvent, FaultKind


def tiny(**overrides):
    """A 2-node scenario small enough for identity tests."""
    kw = dict(
        env="ib", nodes=2, gpus_per_node=2,
        num_layers=4, hidden_size=256, num_attention_heads=4,
        seq_length=128, vocab_size=1024,
        pipeline=2, micro_batch_size=1, num_microbatches=2,
    )
    kw.update(overrides)
    return Scenario(**kw)


def test_rejects_unknown_env():
    with pytest.raises(ConfigurationError):
        tiny(env="token-ring")


def test_rejects_unknown_framework():
    with pytest.raises(ConfigurationError):
        tiny(framework="deepspeed-zero9")


def test_rejects_unknown_schedule():
    with pytest.raises(ConfigurationError):
        tiny(schedule="gpipe-but-wrong")


def test_rejects_inconsistent_degrees():
    # tensor * pipeline * data must divide the world
    with pytest.raises(ConfigurationError):
        tiny(tensor=3)


def test_framework_presets_cover_paper_variants():
    for name in ("holmes", "holmes-full", "holmes-base", "holmes-no-sap",
                 "holmes-no-overlap", "megatron-lm"):
        assert name in FRAMEWORK_PRESETS
        tiny(framework=name)  # constructs without error


def test_workload_spellings_digest_identically():
    # data = world / (tensor * pipeline) = 2 here; 2 microbatches of 1
    # sample each over 2 DP replicas is a global batch of 4.
    explicit = tiny(num_microbatches=0, global_batch_size=4)
    derived = tiny()
    assert explicit.num_microbatches == derived.num_microbatches == 2
    assert explicit.global_batch_size == derived.global_batch_size == 4
    assert explicit.digest() == derived.digest()


def test_straggler_spellings_normalize():
    as_map = tiny(stragglers={3: 1.5, 1: 2.0})
    as_pairs = tiny(stragglers=[(1, 2.0), (3, 1.5)])
    assert as_map.stragglers == ((1, 2.0), (3, 1.5))
    assert as_map.digest() == as_pairs.digest()


def test_fault_events_sort_into_canonical_order():
    late = FaultEvent(time=0.02, kind=FaultKind.NIC_FLAP, node=0)
    early = FaultEvent(time=0.01, kind=FaultKind.STRAGGLER, rank=1, factor=2.0)
    a = tiny(fault_events=(late, early))
    b = tiny(fault_events=(early, late))
    assert a.fault_events == (early, late)
    assert a.digest() == b.digest()


def test_digest_is_stable_and_field_sensitive():
    base = tiny()
    assert base.digest() == tiny().digest()
    changed = [
        tiny(env="roce"),
        tiny(nodes=4),
        tiny(hidden_size=512),
        tiny(framework="holmes-full"),
        tiny(fault_seed=7),
        tiny(bandwidth_scale=0.5),
        tiny(stragglers={0: 2.0}),
    ]
    digests = {base.digest()} | {s.digest() for s in changed}
    assert len(digests) == 1 + len(changed)


def test_label_participates_in_identity():
    # deliberate: a cache hit must reproduce the *entire* RunResult,
    # including the scenario record with its label
    assert tiny(label="a").digest() != tiny(label="b").digest()


def test_canonical_round_trip():
    event = FaultEvent(time=0.01, kind=FaultKind.PACKET_LOSS, node=1,
                       loss_rate=0.05)
    s = tiny(fault_events=(event,), stragglers={2: 1.25}, fault_seed=3)
    back = Scenario.from_canonical(s.canonical())
    assert back == s
    assert back.digest() == s.digest()


def test_canonical_json_is_deterministic_and_salted():
    s = tiny()
    assert canonical_json(s) == canonical_json(tiny())
    assert scenario_digest(s, salt="a") != scenario_digest(s, salt="b")


def test_from_group_builds_labelled_cell():
    s = Scenario.from_group("hybrid", 4, 1)
    assert s.env == "hybrid"
    assert s.nodes == 4
    assert s.world_size == 32
    assert s.label == "g1:hybrid:4x8"
