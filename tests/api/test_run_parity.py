"""The api surface reproduces the legacy entry points byte-for-byte."""

from repro.api import RunResult, Scenario, run, simulate
from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import case_scenario, run_holmes_case
from repro.validate.replay import fingerprint
from repro.validate.scenarios import ENV_BUILDERS, sample_scenarios


def test_run_matches_run_holmes_case():
    group = PARAM_GROUPS[1]
    legacy = run_holmes_case(
        ENV_BUILDERS["hybrid"](4, 8), group, scenario="hybrid"
    )
    modern = run(case_scenario("Hybrid", 4, group))
    assert modern.tflops == legacy.tflops
    assert modern.throughput == legacy.throughput
    assert modern.iteration_time == legacy.iteration_time
    assert modern.reduce_scatter_time == legacy.reduce_scatter_time
    assert modern.dp_rdma_fraction == legacy.dp_rdma_fraction
    assert modern.world_size == legacy.num_gpus


def test_run_is_deterministic():
    scenario = case_scenario("ib", 2, PARAM_GROUPS[1])
    assert run(scenario) == run(scenario)


def test_to_scenario_bridge_matches_validate_specs():
    # the metamorphic harness's ScenarioSpec and the api Scenario must
    # drive the engine identically (including a faulted spec)
    for spec in sample_scenarios(3, seed=123):
        via_spec = fingerprint(spec.run())
        via_api = fingerprint(simulate(spec.to_scenario()))
        assert via_spec == via_api, spec.name


def test_run_result_round_trips_through_json():
    result = run(case_scenario("roce", 2, PARAM_GROUPS[1]))
    back = RunResult.from_dict(result.to_dict())
    assert back == result


def test_result_carries_scenario_provenance():
    scenario = case_scenario("ethernet", 2, PARAM_GROUPS[1])
    result = run(scenario)
    assert result.scenario == scenario.label
    assert result.scenario_digest == scenario.digest()
    assert Scenario.from_canonical(scenario.canonical()) == scenario
