"""Unit tests for DES point-to-point transfers."""

import pytest

from repro.collectives.p2p import ChannelRegistry, recv, send
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.network.fabric import Fabric
from repro.simcore.engine import SimEngine
from repro.simcore.trace import TraceRecorder


@pytest.fixture
def setup():
    engine = SimEngine()
    topo = make_topology(
        [(2, NICType.ROCE), (2, NICType.INFINIBAND)], inter_cluster_rdma=False
    )
    fabric = Fabric(topo, engine=engine)
    channels = ChannelRegistry(engine)
    return engine, fabric, channels


class TestSendRecv:
    def test_message_delivered(self, setup):
        engine, fabric, channels = setup

        def receiver():
            msg = yield from recv(channels, 0, 8, "act:0")
            return msg, engine.now

        engine.process(send(fabric, channels, 0, 8, "act:0", 1 << 20))
        proc = engine.process(receiver())
        engine.run()
        msg, arrival = proc.done.value
        assert msg.src == 0 and msg.dst == 8
        assert msg.nbytes == 1 << 20
        assert arrival > 0.0

    def test_intra_node_faster_than_cross_cluster(self, setup):
        engine, fabric, channels = setup

        def receiver(src, dst, tag):
            yield from recv(channels, src, dst, tag)
            return engine.now

        engine.process(send(fabric, channels, 0, 1, "a", 1 << 20))
        engine.process(send(fabric, channels, 0, 16, "b", 1 << 20))
        p_local = engine.process(receiver(0, 1, "a"))
        p_cross = engine.process(receiver(0, 16, "b"))
        engine.run()
        assert p_local.done.value < p_cross.done.value

    def test_concurrent_sends_serialize_on_nic(self, setup):
        """Two inter-node sends from one node share the NIC: the second
        arrives roughly one occupancy later."""
        engine, fabric, channels = setup
        nbytes = 1 << 24

        def receiver(src, dst, tag):
            yield from recv(channels, src, dst, tag)
            return engine.now

        engine.process(send(fabric, channels, 0, 8, "x", nbytes))
        engine.process(send(fabric, channels, 1, 9, "y", nbytes))
        p1 = engine.process(receiver(0, 8, "x"))
        p2 = engine.process(receiver(1, 9, "y"))
        engine.run()
        occ = fabric.p2p_occupancy(0, 8, nbytes)
        assert abs(p2.done.value - p1.done.value - occ) < occ * 0.01

    def test_sends_from_different_nodes_overlap(self, setup):
        engine, fabric, channels = setup
        nbytes = 1 << 24

        def receiver(src, dst, tag):
            yield from recv(channels, src, dst, tag)
            return engine.now

        engine.process(send(fabric, channels, 0, 16, "x", nbytes))
        engine.process(send(fabric, channels, 8, 24, "y", nbytes))
        p1 = engine.process(receiver(0, 16, "x"))
        p2 = engine.process(receiver(8, 24, "y"))
        engine.run()
        # Different sender NICs... but both cross the same uplink, so the
        # second completes one uplink occupancy later, not a full NIC+uplink.
        gap = abs(p2.done.value - p1.done.value)
        assert gap <= fabric.uplink_occupancy(nbytes) * 1.01

    def test_messages_matched_by_tag(self, setup):
        engine, fabric, channels = setup

        def receiver():
            second = yield from recv(channels, 0, 8, "tag-b")
            first = yield from recv(channels, 0, 8, "tag-a")
            return first.tag, second.tag

        engine.process(send(fabric, channels, 0, 8, "tag-a", 100))
        engine.process(send(fabric, channels, 0, 8, "tag-b", 100))
        proc = engine.process(receiver())
        engine.run()
        assert proc.done.value == ("tag-a", "tag-b")

    def test_trace_records_send_span(self, setup):
        engine, fabric, channels = setup
        trace = TraceRecorder()
        engine.process(send(fabric, channels, 0, 8, "act:0", 1 << 20, trace))

        def receiver():
            yield from recv(channels, 0, 8, "act:0")

        engine.process(receiver())
        engine.run()
        spans = trace.by_label("send:act:0")
        assert len(spans) == 1
        assert spans[0].bytes == 1 << 20
