"""Correctness tests for tree broadcast/reduce."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.tree import tree_broadcast, tree_reduce
from repro.errors import CommunicatorError


class TestTreeBroadcast:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 8, 9])
    def test_all_positions_receive(self, d):
        buf = np.arange(6.0)
        results = tree_broadcast(buf, d)
        assert len(results) == d
        for r in results:
            np.testing.assert_array_equal(r, buf)

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_nonzero_root(self, root):
        buf = np.array([1.0, 2.0])
        results = tree_broadcast(buf, 4, root=root)
        for r in results:
            np.testing.assert_array_equal(r, buf)

    def test_results_are_copies(self):
        buf = np.zeros(3)
        results = tree_broadcast(buf, 3)
        results[0][0] = 99.0
        assert buf[0] == 0.0
        assert results[1][0] == 0.0

    def test_invalid_root_rejected(self):
        with pytest.raises(CommunicatorError):
            tree_broadcast(np.zeros(1), 4, root=4)

    def test_invalid_group_rejected(self):
        with pytest.raises(CommunicatorError):
            tree_broadcast(np.zeros(1), 0)

    @given(d=st.integers(1, 16), root=st.integers(0, 15))
    @settings(max_examples=40, deadline=None)
    def test_property_every_position_gets_payload(self, d, root):
        if root >= d:
            root %= d
        payload = np.array([float(root), float(d)])
        results = tree_broadcast(payload, d, root=root)
        assert len(results) == d
        for r in results:
            np.testing.assert_array_equal(r, payload)


class TestTreeReduce:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 7, 8])
    def test_sum_matches_numpy(self, d):
        rng = np.random.default_rng(d)
        buffers = [rng.standard_normal(10) for _ in range(d)]
        result = tree_reduce(buffers)
        np.testing.assert_allclose(result, np.sum(buffers, axis=0), rtol=1e-10)

    @pytest.mark.parametrize("root", [0, 2, 3])
    def test_nonzero_root(self, root):
        buffers = [np.full(4, float(i)) for i in range(4)]
        result = tree_reduce(buffers, root=root)
        np.testing.assert_allclose(result, np.full(4, 6.0))

    def test_max_op(self):
        buffers = [np.array([1.0, 9.0]), np.array([5.0, 2.0])]
        np.testing.assert_array_equal(
            tree_reduce(buffers, op="max"), np.array([5.0, 9.0])
        )

    def test_inputs_unchanged(self):
        buffers = [np.ones(3), np.ones(3) * 2]
        tree_reduce(buffers)
        np.testing.assert_array_equal(buffers[0], np.ones(3))

    def test_invalid_root_rejected(self):
        with pytest.raises(CommunicatorError):
            tree_reduce([np.zeros(1)], root=1)

    def test_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            tree_reduce([])

    @given(d=st.integers(1, 12), n=st.integers(1, 20), root=st.integers(0, 11))
    @settings(max_examples=40, deadline=None)
    def test_property_reduce_is_sum(self, d, n, root):
        root %= d
        rng = np.random.default_rng(d * 7 + n)
        buffers = [rng.integers(-50, 50, n).astype(float) for _ in range(d)]
        result = tree_reduce(buffers, root=root)
        np.testing.assert_allclose(result, np.sum(buffers, axis=0), rtol=1e-12)
