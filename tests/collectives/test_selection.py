"""Tests for cost-based all-reduce algorithm selection."""

import pytest

from repro.collectives.selection import select_allreduce, selection_table
from repro.errors import CommunicatorError
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.network.fabric import Fabric


@pytest.fixture
def fabric():
    return Fabric(homogeneous_topology(4, NICType.INFINIBAND))


class TestSelection:
    def test_winner_is_cheapest(self, fabric):
        choice = select_allreduce(fabric, list(range(32)), 1 << 28)
        assert choice.duration == min(choice.costs.values())
        assert choice.algorithm in choice.costs

    def test_tiny_messages_prefer_tree(self, fabric):
        """At 1 KiB over 32 ranks the ring's 62 latency steps lose to the
        tree's 2*log2(32)=10."""
        choice = select_allreduce(fabric, list(range(32)), 1 << 10)
        assert choice.algorithm == "tree"

    def test_large_messages_prefer_hierarchical(self, fabric):
        choice = select_allreduce(fabric, list(range(32)), 4 << 30)
        assert choice.algorithm == "hierarchical"
        assert choice.speedup_over("flat-ring") > 1.0

    def test_trivial_cases(self, fabric):
        assert select_allreduce(fabric, [0], 1 << 20).duration == 0.0
        assert select_allreduce(fabric, [0, 1], 0).duration == 0.0

    def test_hierarchical_skipped_for_uneven_layouts(self, fabric):
        # 3 ranks on node 0 and 1 on node 1: no uniform two-level schedule.
        choice = select_allreduce(fabric, [0, 1, 2, 8], 1 << 26)
        assert "hierarchical" not in choice.costs

    def test_speedup_over_unknown_rejected(self, fabric):
        choice = select_allreduce(fabric, [0, 8], 1 << 20)
        with pytest.raises(CommunicatorError):
            choice.speedup_over("quantum")

    def test_selection_table_covers_sizes(self, fabric):
        table = selection_table(fabric, list(range(16)))
        assert len(table) == 5
        # Winners shift from latency-optimal to bandwidth-optimal.
        assert table[0].algorithm == "tree"
        assert table[-1].algorithm in ("flat-ring", "hierarchical")

    def test_crossover_monotone(self, fabric):
        """Once the bandwidth-optimal family wins, it keeps winning."""
        table = selection_table(
            fabric, list(range(16)),
            sizes=[1 << s for s in range(8, 33, 2)],
        )
        winners = [c.algorithm for c in table]
        seen_bandwidth = False
        for w in winners:
            if w in ("flat-ring", "hierarchical"):
                seen_bandwidth = True
            elif seen_bandwidth:
                pytest.fail(f"tree won again after bandwidth algorithms: {winners}")
