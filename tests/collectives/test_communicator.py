"""Unit tests for timed communicators."""

import numpy as np
import pytest

from repro.collectives.communicator import Communicator
from repro.errors import CommunicatorError
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.network.fabric import Fabric
from repro.network.transport import TransportKind


@pytest.fixture
def fabric():
    return Fabric(
        make_topology(
            [(2, NICType.ROCE), (2, NICType.INFINIBAND)], inter_cluster_rdma=False
        )
    )


class TestConstruction:
    def test_valid_group(self, fabric):
        comm = Communicator(fabric, [0, 8, 16], name="dp")
        assert comm.size == 3

    def test_duplicate_ranks_rejected(self, fabric):
        with pytest.raises(CommunicatorError):
            Communicator(fabric, [0, 0, 1])

    def test_out_of_world_ranks_rejected(self, fabric):
        with pytest.raises(CommunicatorError):
            Communicator(fabric, [0, 999])

    def test_empty_group_rejected(self, fabric):
        with pytest.raises(CommunicatorError):
            Communicator(fabric, [])

    def test_size_one_has_no_transport(self, fabric):
        assert Communicator(fabric, [5]).transport is None


class TestAllreduce:
    def test_result_and_duration(self, fabric):
        comm = Communicator(fabric, [0, 8])  # RoCE pair across nodes
        buffers = [np.ones(100), 2 * np.ones(100)]
        result = comm.allreduce(buffers)
        assert result.duration > 0
        assert result.transport.kind == TransportKind.RDMA_ROCE
        for buf in result.buffers:
            np.testing.assert_array_equal(buf, 3 * np.ones(100))

    def test_size_one_is_instant_copy(self, fabric):
        comm = Communicator(fabric, [0])
        result = comm.allreduce([np.arange(4.0)])
        assert result.duration == 0.0
        np.testing.assert_array_equal(result.buffers[0], np.arange(4.0))

    def test_wrong_buffer_count_rejected(self, fabric):
        comm = Communicator(fabric, [0, 8])
        with pytest.raises(CommunicatorError, match="expected 2 buffers"):
            comm.allreduce([np.ones(4)])

    def test_degraded_group_slower(self, fabric):
        data = [np.ones(1 << 20) for _ in range(2)]
        rdma = Communicator(fabric, [16, 24]).allreduce(data)
        mixed = Communicator(fabric, [8, 16]).allreduce(data)
        assert mixed.duration > rdma.duration
        assert mixed.transport.kind == TransportKind.TCP


class TestReduceScatterAllgather:
    def test_reduce_scatter_shards(self, fabric):
        comm = Communicator(fabric, [0, 8, 16])
        buffers = [np.arange(6.0) for _ in range(3)]
        result = comm.reduce_scatter(buffers)
        total = np.concatenate(sorted(result.buffers, key=lambda a: a[0]))
        np.testing.assert_array_equal(np.sort(total), np.sort(3 * np.arange(6.0)))

    def test_allgather_concatenates(self, fabric):
        comm = Communicator(fabric, [0, 8])
        result = comm.allgather([np.zeros(2), np.ones(3)])
        assert result.nbytes == 5 * 8
        for buf in result.buffers:
            np.testing.assert_array_equal(buf, np.array([0, 0, 1, 1, 1.0]))

    def test_rs_then_ag_equals_allreduce_duration_structure(self, fabric):
        comm = Communicator(fabric, [0, 8])
        data = [np.ones(1 << 16) for _ in range(2)]
        ar = comm.allreduce(data).duration
        rs = comm.reduce_scatter(data).duration
        # All-reduce strictly costs more than reduce-scatter alone.
        assert ar > rs


class TestBroadcast:
    def test_broadcast_from_root(self, fabric):
        comm = Communicator(fabric, [0, 8, 16])
        result = comm.broadcast(np.arange(5.0), root=1)
        assert len(result.buffers) == 3
        for buf in result.buffers:
            np.testing.assert_array_equal(buf, np.arange(5.0))

    def test_invalid_root_rejected(self, fabric):
        comm = Communicator(fabric, [0, 8])
        with pytest.raises(CommunicatorError):
            comm.broadcast(np.zeros(1), root=2)
