"""Correctness tests for the ring collective algorithms, including
property-based checks against NumPy oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.ring import (
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)
from repro.errors import CommunicatorError


def make_buffers(d, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(n) for _ in range(d)]


group_sizes = st.integers(min_value=1, max_value=9)
buffer_lens = st.integers(min_value=1, max_value=64)


class TestRingAllreduce:
    @pytest.mark.parametrize("d", [1, 2, 3, 4, 8])
    def test_sum_matches_numpy(self, d):
        buffers = make_buffers(d, 40)
        expected = np.sum(buffers, axis=0)
        for result in ring_allreduce(buffers):
            np.testing.assert_allclose(result, expected, rtol=1e-10)

    def test_preserves_shape(self):
        buffers = [np.ones((4, 5)) for _ in range(3)]
        results = ring_allreduce(buffers)
        assert all(r.shape == (4, 5) for r in results)
        np.testing.assert_allclose(results[0], 3 * np.ones((4, 5)))

    @pytest.mark.parametrize("op,oracle", [
        ("sum", np.sum),
        ("max", lambda b, axis: np.max(b, axis=axis)),
        ("min", lambda b, axis: np.min(b, axis=axis)),
        ("prod", lambda b, axis: np.prod(b, axis=axis)),
    ])
    def test_all_reduce_ops(self, op, oracle):
        buffers = make_buffers(4, 16, seed=3)
        expected = oracle(buffers, axis=0)
        for result in ring_allreduce(buffers, op=op):
            np.testing.assert_allclose(result, expected, rtol=1e-10)

    def test_does_not_mutate_inputs(self):
        buffers = make_buffers(3, 10)
        originals = [b.copy() for b in buffers]
        ring_allreduce(buffers)
        for b, o in zip(buffers, originals):
            np.testing.assert_array_equal(b, o)

    def test_unknown_op_rejected(self):
        with pytest.raises(CommunicatorError, match="unknown reduce op"):
            ring_allreduce(make_buffers(2, 4), op="xor")

    def test_empty_group_rejected(self):
        with pytest.raises(CommunicatorError):
            ring_allreduce([])

    @given(d=group_sizes, n=buffer_lens, seed=st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_property_allreduce_is_sum(self, d, n, seed):
        rng = np.random.default_rng(seed)
        buffers = [rng.integers(-100, 100, size=n).astype(float) for _ in range(d)]
        expected = np.sum(buffers, axis=0)
        for result in ring_allreduce(buffers):
            np.testing.assert_allclose(result, expected, rtol=1e-12)

    @given(d=group_sizes, n=buffer_lens)
    @settings(max_examples=30, deadline=None)
    def test_property_all_ranks_identical(self, d, n):
        buffers = make_buffers(d, n, seed=d * 100 + n)
        results = ring_allreduce(buffers)
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])


class TestRingReduceScatter:
    def test_shards_cover_reduction(self):
        """Rank r holds the fully reduced chunk (r+1) mod d."""
        d, n = 4, 20
        buffers = make_buffers(d, n)
        expected = np.sum(buffers, axis=0)
        shards = ring_reduce_scatter(buffers)
        chunks = np.array_split(expected, d)
        for r in range(d):
            np.testing.assert_allclose(shards[r], chunks[(r + 1) % d], rtol=1e-10)

    def test_uneven_chunks(self):
        # 7 elements over 3 ranks: chunk sizes 3, 2, 2.
        buffers = make_buffers(3, 7)
        shards = ring_reduce_scatter(buffers)
        assert sorted(len(s) for s in shards) == [2, 2, 3]

    def test_single_rank_identity(self):
        buf = np.arange(5.0)
        [shard] = ring_reduce_scatter([buf])
        np.testing.assert_array_equal(shard, buf)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(CommunicatorError, match="mismatched"):
            ring_reduce_scatter([np.zeros(3), np.zeros(4)])

    @given(d=st.integers(2, 8), n=st.integers(2, 48))
    @settings(max_examples=40, deadline=None)
    def test_property_concatenated_shards_equal_sum(self, d, n):
        buffers = make_buffers(d, n, seed=n)
        expected = np.sum(buffers, axis=0)
        shards = ring_reduce_scatter(buffers)
        # Reassemble in chunk order: chunk j lives on rank (j-1) mod d.
        reassembled = np.concatenate([shards[(j - 1) % d] for j in range(d)])
        np.testing.assert_allclose(reassembled, expected, rtol=1e-10)


class TestRingAllgather:
    def test_gathers_in_order(self):
        shards = [np.full(3, float(i)) for i in range(4)]
        results = ring_allgather(shards)
        expected = np.concatenate(shards)
        for r in results:
            np.testing.assert_array_equal(r, expected)

    def test_variable_shard_sizes(self):
        shards = [np.arange(2.0), np.arange(3.0), np.arange(1.0)]
        results = ring_allgather(shards)
        expected = np.concatenate(shards)
        for r in results:
            np.testing.assert_array_equal(r, expected)

    def test_single_rank(self):
        [result] = ring_allgather([np.arange(4.0)])
        np.testing.assert_array_equal(result, np.arange(4.0))

    def test_empty_group_rejected(self):
        with pytest.raises(CommunicatorError):
            ring_allgather([])

    @given(d=st.integers(1, 8), n=st.integers(1, 32))
    @settings(max_examples=40, deadline=None)
    def test_property_gather_equals_concatenate(self, d, n):
        rng = np.random.default_rng(d * 31 + n)
        shards = [rng.standard_normal(n) for _ in range(d)]
        expected = np.concatenate(shards)
        for result in ring_allgather(shards):
            np.testing.assert_array_equal(result, expected)
