"""Executed collectives vs. the closed-form cost-model oracle.

The per-step price of an executed collective was chosen so that chaining
steps on an *uncontended* fabric reproduces the alpha-beta closed forms in
:mod:`repro.network.costmodel` — these property tests pin that contract
within 1% across group sizes, message sizes (single- and multi-bucket),
and NIC families, for ring reduce-scatter/all-gather/all-reduce, binomial
tree broadcast, and the hierarchical two-level all-reduce.  Heterogeneous
groups (one degraded edge) must match the slowest-link bound the paper's
Table 1 describes.
"""

import pytest

from repro.collectives.executor import CollectiveExecutor, OpWindow
from repro.collectives.hierarchical import hierarchical_allreduce_time
from repro.collectives.p2p import ChannelRegistry
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.network.fabric import Fabric
from repro.simcore.engine import SimEngine
from repro.units import MB

FAMILIES = [NICType.INFINIBAND, NICType.ROCE, NICType.ETHERNET]


def run_collective(topo, op, ranks, nbytes, degrade=None):
    """Execute one collective standalone; returns (makespan, fabric, executor)."""
    engine = SimEngine()
    fabric = Fabric(topo, engine=engine)
    if degrade is not None:
        node, family, factor = degrade
        fabric.health.set_bandwidth_factor(node, family, factor)
    channels = ChannelRegistry(engine)
    executor = CollectiveExecutor(fabric, channels)
    for r in ranks:
        engine.process(
            executor.run_op(op, ranks, r, float(nbytes), tag="op"),
            name=f"rank{r}",
        )
    engine.run()
    return engine.now, fabric, executor


class TestRingMatchesOracle:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("group_size", [2, 4, 8])
    @pytest.mark.parametrize("nbytes", [16 * MB, 512 * MB])
    @pytest.mark.parametrize("op", ["reduce_scatter", "allgather", "allreduce"])
    def test_inter_node_ring(self, family, group_size, nbytes, op):
        """One rank per node: every ring edge crosses a NIC.  512 MB spans
        multiple 128 MB fusion buckets, exercising the per-step
        ``messages`` latency multiplier."""
        topo = homogeneous_topology(group_size, family, gpus_per_node=1)
        ranks = list(range(group_size))
        makespan, fabric, _ = run_collective(topo, op, ranks, nbytes)
        oracle = fabric.collective_time(op, ranks, nbytes)
        assert makespan == pytest.approx(oracle, rel=0.01)

    @pytest.mark.parametrize("group_size", [2, 4, 8])
    def test_intra_node_nvlink_ring(self, group_size):
        topo = homogeneous_topology(1, NICType.INFINIBAND, gpus_per_node=8)
        ranks = list(range(group_size))
        makespan, fabric, _ = run_collective(topo, "allreduce", ranks, 256 * MB)
        oracle = fabric.collective_time("allreduce", ranks, 256 * MB)
        assert makespan == pytest.approx(oracle, rel=0.01)

    def test_mixed_intra_inter_ring(self):
        """Multi-GPU nodes: most edges are NVLink, two cross the NIC.  The
        node-contiguous ring makes the slowest (NIC) edge dominate, which
        is exactly what the closed form assumes."""
        topo = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=4)
        ranks = list(range(8))
        makespan, fabric, _ = run_collective(topo, "reduce_scatter", ranks, 512 * MB)
        oracle = fabric.collective_time("reduce_scatter", ranks, 512 * MB)
        assert makespan == pytest.approx(oracle, rel=0.01)

    @pytest.mark.parametrize("factor", [0.5, 0.25])
    def test_heterogeneous_ring_matches_slowest_link(self, factor):
        """One browned-out NIC throttles the whole ring to its pace — the
        emergent version of the paper's slowest-link degradation.  The
        oracle's group transport already resolves to the degraded edge, so
        executed and closed form agree; executed must never beat the
        slowest-link lower bound."""
        topo = homogeneous_topology(4, NICType.INFINIBAND, gpus_per_node=1)
        ranks = list(range(4))
        slow, fabric, _ = run_collective(
            topo, "reduce_scatter", ranks, 256 * MB,
            degrade=(2, NICType.INFINIBAND, factor),
        )
        bound = fabric.collective_time("reduce_scatter", ranks, 256 * MB)
        assert slow == pytest.approx(bound, rel=0.01)
        assert slow >= bound * 0.99
        healthy, fabric2, _ = run_collective(topo, "reduce_scatter", ranks, 256 * MB)
        assert slow > healthy / factor * 0.9  # throttled roughly by 1/factor


class TestTreeMatchesOracle:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("group_size", [2, 4, 8])
    def test_binomial_broadcast(self, family, group_size):
        topo = homogeneous_topology(group_size, family, gpus_per_node=1)
        ranks = list(range(group_size))
        makespan, fabric, _ = run_collective(topo, "broadcast", ranks, 64 * MB)
        oracle = fabric.collective_time("broadcast", ranks, 64 * MB)
        assert makespan == pytest.approx(oracle, rel=0.01)


class TestHierarchicalMatchesOracle:
    @pytest.mark.parametrize("nodes,gpn", [(2, 4), (4, 4), (4, 2)])
    def test_two_level_allreduce(self, nodes, gpn):
        topo = homogeneous_topology(nodes, NICType.INFINIBAND, gpus_per_node=gpn)
        ranks = list(range(nodes * gpn))
        makespan, fabric, _ = run_collective(
            topo, "hierarchical_allreduce", ranks, 512 * MB
        )
        oracle = hierarchical_allreduce_time(fabric, ranks, 512 * MB)
        assert makespan == pytest.approx(oracle, rel=0.01)

    def test_single_node_falls_back_to_flat_ring(self):
        topo = homogeneous_topology(1, NICType.INFINIBAND, gpus_per_node=4)
        ranks = list(range(4))
        makespan, fabric, _ = run_collective(
            topo, "hierarchical_allreduce", ranks, 128 * MB
        )
        oracle = hierarchical_allreduce_time(fabric, ranks, 128 * MB)
        assert makespan == pytest.approx(oracle, rel=0.01)


class TestExecutorBookkeeping:
    def test_windows_record_every_member(self):
        topo = homogeneous_topology(4, NICType.ROCE, gpus_per_node=1)
        ranks = list(range(4))
        _, _, executor = run_collective(topo, "allreduce", ranks, 64 * MB)
        window = executor.windows["op"]
        assert window.complete
        assert window.duration > 0
        assert set(window.starts) == set(ranks)

    def test_determinism(self):
        topo = homogeneous_topology(4, NICType.ROCE, gpus_per_node=2)
        ranks = list(range(8))
        t1, _, _ = run_collective(topo, "allreduce", ranks, 128 * MB)
        t2, _, _ = run_collective(topo, "allreduce", ranks, 128 * MB)
        assert t1 == t2

    def test_trivial_groups_are_free(self):
        topo = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=1)
        makespan, _, executor = run_collective(topo, "allreduce", [0], 64 * MB)
        assert makespan == 0.0
        assert executor.windows == {}

    def test_incomplete_window_clamps_duration(self):
        window = OpWindow(tag="t", op="allreduce", group_size=2)
        assert window.duration == 0.0
        window.starts[0] = 5.0
        assert window.duration == 0.0  # no ends recorded yet
