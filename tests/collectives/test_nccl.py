"""Unit tests for the communicator pool and transport audits."""

import pytest

from repro.collectives.nccl import CommunicatorPool
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology, homogeneous_topology
from repro.network.fabric import Fabric
from repro.network.transport import TransportKind


@pytest.fixture
def pool():
    topo = make_topology(
        [(2, NICType.ROCE), (2, NICType.INFINIBAND)], inter_cluster_rdma=True
    )
    return CommunicatorPool(Fabric(topo))


class TestPool:
    def test_communicators_are_cached(self, pool):
        a = pool.get([0, 8], name="dp")
        b = pool.get([0, 8], name="dp")
        assert a is b

    def test_different_names_distinct(self, pool):
        assert pool.get([0, 8], "dp") is not pool.get([0, 8], "pp")


class TestReports:
    def test_homogeneous_rdma_group(self, pool):
        report = pool.report([0, 8], name="dp[0]")
        assert report.transport_kind == TransportKind.RDMA_ROCE
        assert report.is_rdma
        assert not report.degraded_by_heterogeneity

    def test_mixed_group_flagged_degraded(self, pool):
        """IB + RoCE membership forces TCP: the Automatic-NIC-Selection
        pathology (paper S3.2)."""
        report = pool.report([0, 16], name="dp[bad]")
        assert report.transport_kind == TransportKind.TCP
        assert report.degraded_by_heterogeneity
        assert set(report.nic_families) == {"infiniband", "roce"}

    def test_ethernet_only_group_not_flagged(self):
        topo = homogeneous_topology(2, NICType.ETHERNET)
        pool = CommunicatorPool(Fabric(topo))
        report = pool.report([0, 8])
        assert report.transport_kind == TransportKind.TCP
        assert not report.degraded_by_heterogeneity  # nothing was lost

    def test_trivial_group_report(self, pool):
        report = pool.report([3], name="solo")
        assert not report.degraded_by_heterogeneity
        assert report.transport_kind == TransportKind.NVLINK


class TestAudit:
    def test_audit_names_groups(self, pool):
        reports = pool.audit({"data": [[0, 8], [16, 24]], "pipeline": [[0, 16]]})
        names = [r.name for r in reports]
        assert names == ["data[0]", "data[1]", "pipeline[0]"]

    def test_degraded_groups_filter(self, pool):
        degraded = pool.degraded_groups(
            {"data": [[0, 8], [0, 16]], "pipeline": [[8, 24]]}
        )
        assert [r.name for r in degraded] == ["data[1]", "pipeline[0]"]
