"""Tests for hierarchical all-reduce and all-to-all."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.hierarchical import (
    alltoall,
    hierarchical_allreduce,
    hierarchical_allreduce_time,
)
from repro.errors import CommunicatorError
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.network.fabric import Fabric


class TestHierarchicalAllreduce:
    @pytest.mark.parametrize("nodes,per_node", [(2, 2), (2, 4), (3, 2), (4, 4)])
    def test_matches_flat_sum(self, nodes, per_node):
        total = nodes * per_node
        rng = np.random.default_rng(total)
        buffers = [rng.standard_normal(24) for _ in range(total)]
        expected = np.sum(buffers, axis=0)
        for result in hierarchical_allreduce(buffers, per_node):
            np.testing.assert_allclose(result, expected, rtol=1e-10)

    def test_preserves_shape(self):
        buffers = [np.ones((3, 4)) for _ in range(4)]
        results = hierarchical_allreduce(buffers, 2)
        assert all(r.shape == (3, 4) for r in results)

    def test_indivisible_rejected(self):
        with pytest.raises(CommunicatorError):
            hierarchical_allreduce([np.ones(4)] * 5, ranks_per_node=2)

    def test_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            hierarchical_allreduce([], 1)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(CommunicatorError):
            hierarchical_allreduce([np.ones(3), np.ones(4)], 1)

    @given(
        nodes=st.integers(1, 4),
        per_node=st.integers(1, 4),
        n=st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_equals_flat(self, nodes, per_node, n):
        total = nodes * per_node
        rng = np.random.default_rng(total * 31 + n)
        buffers = [rng.integers(-10, 10, n).astype(float) for _ in range(total)]
        expected = np.sum(buffers, axis=0)
        for result in hierarchical_allreduce(buffers, per_node):
            np.testing.assert_allclose(result, expected, rtol=1e-12)


class TestHierarchicalTiming:
    def test_beats_flat_ring_for_large_groups(self):
        """With a fast NVLink tier, the two-level schedule crosses the NIC
        with less data per rank than a flat 32-rank ring."""
        topo = homogeneous_topology(4, NICType.INFINIBAND)
        fabric = Fabric(topo)
        ranks = list(range(32))
        nbytes = 1 << 30
        flat = fabric.collective_time("allreduce", ranks, nbytes)
        hier = hierarchical_allreduce_time(fabric, ranks, nbytes)
        assert hier < flat

    def test_single_node_falls_back_to_flat(self):
        topo = homogeneous_topology(1, NICType.INFINIBAND)
        fabric = Fabric(topo)
        ranks = list(range(8))
        flat = fabric.collective_time("allreduce", ranks, 1 << 20)
        hier = hierarchical_allreduce_time(fabric, ranks, 1 << 20)
        assert hier == pytest.approx(flat)

    def test_trivial_cases_free(self):
        topo = homogeneous_topology(1, NICType.INFINIBAND)
        fabric = Fabric(topo)
        assert hierarchical_allreduce_time(fabric, [0], 1 << 20) == 0.0
        assert hierarchical_allreduce_time(fabric, [0, 1], 0) == 0.0

    def test_unequal_nodes_rejected(self):
        topo = homogeneous_topology(2, NICType.INFINIBAND)
        fabric = Fabric(topo)
        with pytest.raises(CommunicatorError):
            hierarchical_allreduce_time(fabric, [0, 1, 8], 1 << 20)


class TestAllToAll:
    def test_exchange_pattern(self):
        # Rank i sends chunk j to rank j.
        buffers = [np.arange(4.0) + 10 * i for i in range(4)]
        results = alltoall(buffers)
        for dst in range(4):
            expected = np.array([float(dst + 10 * src) for src in range(4)])
            np.testing.assert_array_equal(results[dst], expected)

    def test_total_volume_conserved(self):
        rng = np.random.default_rng(7)
        buffers = [rng.standard_normal(6) for _ in range(3)]
        results = alltoall(buffers)
        assert sum(r.size for r in results) == sum(b.size for b in buffers)
        np.testing.assert_allclose(
            np.sort(np.concatenate(results)),
            np.sort(np.concatenate(buffers)),
        )

    def test_indivisible_rejected(self):
        with pytest.raises(CommunicatorError):
            alltoall([np.ones(5), np.ones(5)])

    def test_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            alltoall([])

    @given(d=st.integers(1, 6), chunk=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_property_involution(self, d, chunk):
        """All-to-all applied twice restores the original buffers."""
        rng = np.random.default_rng(d * 13 + chunk)
        buffers = [rng.standard_normal(d * chunk) for _ in range(d)]
        twice = alltoall(alltoall(buffers))
        for original, restored in zip(buffers, twice):
            np.testing.assert_allclose(original, restored)
