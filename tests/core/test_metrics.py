"""Tests for metric assembly."""

import pytest

from repro.core.metrics import compute_metrics
from repro.model.config import GPTConfig
from repro.model.flops import flops_per_iteration


class TestComputeMetrics:
    def test_fields_consistent(self):
        model = GPTConfig(num_layers=30, hidden_size=3072, num_attention_heads=32)
        metrics = compute_metrics(model, 768, iteration_time=7.74, num_gpus=32)
        assert metrics.total_flops == pytest.approx(flops_per_iteration(model, 768))
        assert metrics.throughput == pytest.approx(768 / 7.74)
        assert metrics.tflops_per_gpu == pytest.approx(
            metrics.total_flops / (7.74 * 32) / 1e12
        )

    def test_str_format(self):
        model = GPTConfig(num_layers=2, hidden_size=256, num_attention_heads=4)
        text = str(compute_metrics(model, 8, 1.0, 4))
        assert "TFLOPS" in text and "samples/s" in text
