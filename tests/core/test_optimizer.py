"""Tests for gradient synchronisation strategies."""

import pytest

from repro.core.optimizer import (
    STRATEGIES,
    OptimizerStrategy,
    SyncOp,
    make_overlapped,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_expected_strategies_present(self):
        assert set(STRATEGIES) == {"allreduce", "distributed", "overlapped",
                                   "zero2", "zero3"}

    def test_allreduce_moves_fp32_grads(self):
        volumes = STRATEGIES["allreduce"].sync_volume_bytes(1000)
        assert volumes == {"allreduce": 4000}

    def test_distributed_is_rs_plus_ag(self):
        volumes = STRATEGIES["distributed"].sync_volume_bytes(1000)
        assert volumes == {"reduce_scatter": 4000, "allgather": 2000}

    def test_overlapped_same_volumes_as_distributed(self):
        assert (
            STRATEGIES["overlapped"].sync_volume_bytes(10)
            == STRATEGIES["distributed"].sync_volume_bytes(10)
        )


class TestExposedTime:
    def test_non_overlapped_fully_exposed(self):
        strategy = STRATEGIES["distributed"]
        times = {"reduce_scatter": 2.0, "allgather": 1.0}
        assert strategy.exposed_time(times, backward_window=100.0) == 3.0

    def test_overlapped_hides_fraction(self):
        strategy = make_overlapped(0.5)
        times = {"reduce_scatter": 2.0, "allgather": 1.0}
        # Both ops overlappable at 50%: exposed = 1.0 + 0.5 = 1.5.
        assert strategy.exposed_time(times, backward_window=100.0) == pytest.approx(1.5)

    def test_overlap_bounded_by_backward_window(self):
        strategy = make_overlapped(1.0)
        times = {"reduce_scatter": 10.0, "allgather": 0.0}
        exposed = strategy.exposed_time(times, backward_window=3.0)
        assert exposed == pytest.approx(7.0)  # only 3s of hiding available

    def test_tcp_overlap_scaled_down(self):
        strategy = make_overlapped(1.0)
        times = {"reduce_scatter": 10.0, "allgather": 0.0}
        rdma = strategy.exposed_time(times, 100.0, over_tcp=False)
        tcp = strategy.exposed_time(times, 100.0, over_tcp=True)
        assert rdma == pytest.approx(0.0)
        assert tcp == pytest.approx(10.0 * (1 - strategy.tcp_overlap_scale))

    def test_step_overhead_added(self):
        strategy = OptimizerStrategy(
            name="x", ops=(SyncOp("allreduce", 4, False),), step_overhead=0.25
        )
        assert strategy.exposed_time({"allreduce": 1.0}, 0.0) == pytest.approx(1.25)

    def test_zero_window_hides_nothing(self):
        strategy = make_overlapped(1.0)
        times = {"reduce_scatter": 5.0, "allgather": 2.0}
        assert strategy.exposed_time(times, backward_window=0.0) == pytest.approx(7.0)

    def test_negative_inputs_rejected(self):
        strategy = STRATEGIES["distributed"]
        with pytest.raises(ConfigurationError):
            strategy.exposed_time({"reduce_scatter": 1.0}, backward_window=-1.0)
        with pytest.raises(ConfigurationError):
            strategy.exposed_time({"reduce_scatter": -1.0}, backward_window=1.0)

    def test_negative_shard_rejected(self):
        with pytest.raises(ConfigurationError):
            STRATEGIES["allreduce"].sync_volume_bytes(-1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(overlap_efficiency=-0.1),
            dict(overlap_efficiency=1.1),
            dict(step_overhead=-1.0),
            dict(tcp_overlap_scale=-0.1),
            dict(tcp_overlap_scale=1.1),
        ],
    )
    def test_invalid_strategy_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            OptimizerStrategy(name="bad", ops=(), **kwargs)


class TestZeroStrategies:
    def test_zero2_matches_distributed_comm(self):
        assert (
            STRATEGIES["zero2"].sync_volume_bytes(100)
            == STRATEGIES["distributed"].sync_volume_bytes(100)
        )

    def test_zero3_gathers_params_twice(self):
        volumes = STRATEGIES["zero3"].sync_volume_bytes(100)
        assert volumes["reduce_scatter"] == 400
        assert volumes["allgather"] == 400  # 2 bytes x 2 gathers

    def test_zero3_everything_overlappable(self):
        assert all(op.overlappable for op in STRATEGIES["zero3"].ops)

    def test_duplicate_op_names_rejected(self):
        with pytest.raises(ConfigurationError):
            OptimizerStrategy(
                name="bad",
                ops=(SyncOp("allgather", 2, True), SyncOp("allgather", 2, True)),
            )

    def test_invalid_repeat_rejected(self):
        with pytest.raises(ConfigurationError):
            OptimizerStrategy(
                name="bad", ops=(SyncOp("allgather", 2, True, repeat=0),)
            )
