"""Tests for traffic accounting and the NIC upgrade advisor."""

import pytest

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import ethernet_env, homogeneous_env, hybrid2_env
from repro.core.advisor import advise_upgrades, upgrade_cluster_nic
from repro.core.scheduler import HolmesScheduler
from repro.core.traffic import iteration_traffic
from repro.errors import ConfigurationError
from repro.hardware.nic import NICType
from repro.model.memory import GRAD_BYTES_PER_PARAM, PARAM_BYTES_PER_PARAM


def plan_for(topo, group):
    return HolmesScheduler().plan(
        topo, group.parallel_for(topo.world_size), group.model
    )


class TestTrafficAccounting:
    def test_hybrid_dp_rides_rdma(self):
        group = PARAM_GROUPS[1]
        topo = hybrid2_env(4)
        report = iteration_traffic(plan_for(topo, group), group.model)
        assert report.by_type["data"] > 0
        assert report.by_type["pipeline"] > 0
        assert report.by_type["tensor"] == 0  # t=1
        # All DP bytes on RDMA; pipeline crosses the uplink.
        assert report.by_link["rdma"] >= report.by_type["data"]
        assert report.by_link["uplink"] > 0
        assert report.fraction_on_rdma() > 0.8

    def test_ethernet_env_has_no_rdma_traffic(self):
        group = PARAM_GROUPS[1]
        topo = ethernet_env(2)
        report = iteration_traffic(plan_for(topo, group), group.model)
        assert report.by_link["rdma"] == 0
        assert report.fraction_on_rdma() == 0.0

    def test_dp_volume_matches_formula(self):
        """One DP group, known shard: wire bytes = (4+2) * params * (d-1)."""
        group = PARAM_GROUPS[1]
        topo = homogeneous_env(2, NICType.INFINIBAND)
        plan = plan_for(topo, group)
        report = iteration_traffic(plan, group.model)
        from repro.model.params import (
            embedding_params,
            transformer_layer_params,
        )

        d = plan.parallel.data
        per_op = GRAD_BYTES_PER_PARAM + PARAM_BYTES_PER_PARAM
        expected = 0
        for stage, layers in enumerate(plan.stage_layers):
            shard = layers * transformer_layer_params(group.model)
            if stage == 0:
                shard += embedding_params(group.model)
            expected += per_op * shard * (d - 1)
        assert report.by_type["data"] == pytest.approx(expected, rel=1e-6)

    def test_tensor_traffic_on_nvlink(self):
        group = PARAM_GROUPS[7]  # t=8
        topo = hybrid2_env(4)
        report = iteration_traffic(plan_for(topo, group), group.model)
        assert report.by_type["tensor"] > 0
        assert report.by_link["nvlink"] >= report.by_type["tensor"]

    def test_pipeline_volume_scales_with_microbatches(self):
        group_small = PARAM_GROUPS[1]  # batch 768
        group_big = PARAM_GROUPS[2]  # batch 1536, same model
        topo = hybrid2_env(4)
        small = iteration_traffic(plan_for(topo, group_small), group_small.model)
        big = iteration_traffic(plan_for(topo, group_big), group_big.model)
        assert big.by_type["pipeline"] == 2 * small.by_type["pipeline"]


class TestUpgradeAdvisor:
    def test_swap_changes_family(self):
        topo = hybrid2_env(4)  # cluster 0 RoCE, cluster 1 IB
        upgraded = upgrade_cluster_nic(topo, 0, NICType.INFINIBAND)
        assert upgraded.clusters[0].nic_type == NICType.INFINIBAND
        assert topo.clusters[0].nic_type == NICType.ROCE  # original intact

    def test_invalid_swaps_rejected(self):
        topo = hybrid2_env(4)
        with pytest.raises(ConfigurationError):
            upgrade_cluster_nic(topo, 0, NICType.ETHERNET)
        with pytest.raises(ConfigurationError):
            upgrade_cluster_nic(topo, 9, NICType.INFINIBAND)

    def test_advise_on_hybrid(self):
        """On RoCE+IB, the only upgrade is RoCE cluster -> IB, and it must
        help (it removes both drag and the slow sync)."""
        group = PARAM_GROUPS[1]
        options = advise_upgrades(hybrid2_env(4), group)
        assert len(options) == 1
        best = options[0]
        assert best.cluster_id == 0
        assert best.to_family == NICType.INFINIBAND
        assert best.speedup > 1.0
        assert "cluster 0" in best.describe()

    def test_no_upgrades_on_all_ib(self):
        group = PARAM_GROUPS[1]
        options = advise_upgrades(
            homogeneous_env(2, NICType.INFINIBAND), group
        )
        assert options == []

    def test_ethernet_cluster_offers_two_paths(self):
        group = PARAM_GROUPS[1]
        options = advise_upgrades(ethernet_env(2), group)
        targets = {o.to_family for o in options}
        assert targets == {NICType.ROCE, NICType.INFINIBAND}
        # IB upgrade beats RoCE upgrade.
        assert options[0].to_family == NICType.INFINIBAND
