"""Tests for the Holmes scheduler: placements, stage NICs, plans."""

import pytest

from repro.core.scheduler import HolmesScheduler
from repro.errors import SchedulingError
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology, make_topology
from repro.model.config import GPTConfig
from repro.parallel.degrees import ParallelConfig


@pytest.fixture
def model():
    return GPTConfig(num_layers=30, hidden_size=3072, num_attention_heads=32)


@pytest.fixture
def hybrid_topo():
    # RoCE cluster first, as the paper lists its environments.
    return make_topology(
        [(2, NICType.ROCE), (2, NICType.INFINIBAND)], inter_cluster_rdma=False
    )


def pconfig(t, p, d, batch=None):
    return ParallelConfig(tensor=t, pipeline=p, data=d,
                          micro_batch_size=4, global_batch_size=batch or 4 * d)


class TestHolmesPlacement:
    def test_aligned_stages_identity_order(self, hybrid_topo, model):
        plan = HolmesScheduler().plan(
            hybrid_topo, pconfig(1, 2, 16, batch=768), model
        )
        # Stage 0 -> RoCE cluster (ranks 0..15), stage 1 -> IB cluster.
        assert plan.straddling_stages == 0
        assert plan.stage_nics == (NICType.ROCE, NICType.INFINIBAND)
        stage0_phys = [plan.placement.physical(r) for r in plan.layout.stage_ranks(0)]
        assert sorted(stage0_phys) == list(range(16))

    def test_homogeneous_env_trivial(self, model):
        topo = homogeneous_topology(4, NICType.INFINIBAND)
        plan = HolmesScheduler().plan(topo, pconfig(1, 2, 16, batch=768), model)
        assert plan.straddling_stages == 0
        assert plan.stage_nics == (NICType.INFINIBAND, NICType.INFINIBAND)

    def test_three_clusters_three_stages(self, model):
        topo = make_topology(
            [(2, NICType.ROCE), (2, NICType.ROCE), (2, NICType.INFINIBAND)],
            inter_cluster_rdma=False,
        )
        plan = HolmesScheduler().plan(topo, pconfig(1, 3, 16, batch=768), model)
        assert plan.straddling_stages == 0
        assert plan.stage_nics == (
            NICType.ROCE, NICType.ROCE, NICType.INFINIBAND
        )

    def test_reordering_avoids_straddle(self, model):
        """Clusters of 1+2+1 nodes with p=2 (stage = 2 nodes): the natural
        order straddles; a reordering can avoid it."""
        topo = make_topology(
            [(1, NICType.ROCE), (2, NICType.INFINIBAND), (1, NICType.ROCE)],
            inter_cluster_rdma=False,
        )
        plan = HolmesScheduler().plan(topo, pconfig(1, 2, 16, batch=768), model)
        assert plan.straddling_stages == 0
        families = set(plan.stage_nics)
        assert NICType.INFINIBAND in families

    def test_same_family_split_clusters_marks_ethernet_dp(self, model):
        """Two unconnected IB clusters, p=1: the single stage spans both, so
        its DP groups ride Ethernet (paper Case 2 boundary condition)."""
        topo = make_topology(
            [(1, NICType.INFINIBAND), (1, NICType.INFINIBAND)],
            inter_cluster_rdma=False,
        )
        plan = HolmesScheduler().plan(topo, pconfig(1, 1, 16, batch=768), model)
        assert plan.stage_nics == (NICType.ETHERNET,)

    def test_split_env_stages_keep_rdma(self, model):
        """Two unconnected IB clusters with p=2: each stage stays inside one
        cluster, DP keeps InfiniBand (Figure 4's scenario)."""
        topo = make_topology(
            [(2, NICType.INFINIBAND), (2, NICType.INFINIBAND)],
            inter_cluster_rdma=False,
        )
        plan = HolmesScheduler().plan(topo, pconfig(1, 2, 16, batch=768), model)
        assert plan.stage_nics == (NICType.INFINIBAND, NICType.INFINIBAND)


class TestIdentityPlacement:
    def test_identity_strategy(self, hybrid_topo, model):
        plan = HolmesScheduler().plan(
            hybrid_topo, pconfig(1, 2, 16, batch=768), model,
            placement_strategy="identity",
        )
        assert plan.placement.name == "identity"
        assert [plan.placement.physical(i) for i in range(32)] == list(range(32))

    def test_unknown_strategy_rejected(self, hybrid_topo, model):
        with pytest.raises(SchedulingError):
            HolmesScheduler().plan(
                hybrid_topo, pconfig(1, 2, 16, batch=768), model,
                placement_strategy="random",
            )


class TestPartitionStrategies:
    def test_self_adapting_gives_ib_more_layers(self, hybrid_topo):
        model = GPTConfig(num_layers=36, hidden_size=4096, num_attention_heads=32)
        plan = HolmesScheduler(alpha=1.05).plan(
            hybrid_topo, pconfig(1, 2, 16, batch=768), model
        )
        # Stage 0 is RoCE, stage 1 is IB: IB gets more layers (proxies come
        # from the simulated testbed's own drag measurements).
        assert plan.stage_layers == (17, 19)

    def test_uniform_partition(self, hybrid_topo, model):
        plan = HolmesScheduler().plan(
            hybrid_topo, pconfig(1, 2, 16, batch=768), model,
            partition_strategy="uniform",
        )
        assert plan.stage_layers == (15, 15)

    def test_unknown_partition_rejected(self, hybrid_topo, model):
        with pytest.raises(SchedulingError):
            HolmesScheduler().plan(
                hybrid_topo, pconfig(1, 2, 16, batch=768), model,
                partition_strategy="magic",
            )


class TestPlanProperties:
    def test_physical_groups_are_permuted(self, hybrid_topo, model):
        plan = HolmesScheduler().plan(hybrid_topo, pconfig(1, 2, 16, batch=768), model)
        groups = plan.physical_groups
        assert set(groups) == {"tensor", "pipeline", "data"}
        flat = sorted(r for g in groups["data"] for r in g)
        assert flat == list(range(32))

    def test_describe_mentions_strategies(self, hybrid_topo, model):
        plan = HolmesScheduler().plan(hybrid_topo, pconfig(1, 2, 16, batch=768), model)
        text = plan.describe()
        assert "holmes" in text
        assert "self_adapting" in text
