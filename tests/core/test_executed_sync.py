"""Measured gradient-sync behaviour of executed collectives.

These tests pin the issue's acceptance criteria: hidden-vs-exposed overlap
is an *output* of the simulation (the analytic ``overlap_efficiency``
scalar is inert on the engine path), the hidden fraction responds to the
size of the backward window it hides behind, and a link brownout on a
DP-group NIC shows up both in the executed grads-sync duration and in the
critical-path attribution budget's collective share.

The fixture is deliberately communication-heavy: one GPU per node on
25 GbE so the data-parallel rings cross NICs and sync time is the same
order as backward compute.
"""

import pytest

from repro.core.engine import TrainingSimulation
from repro.core.optimizer import STRATEGIES, make_overlapped
from repro.core.scheduler import HolmesScheduler
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.model.config import GPTConfig
from repro.obs.attribution import Category
from repro.parallel.degrees import ParallelConfig

MODEL = GPTConfig(num_layers=8, hidden_size=2048, num_attention_heads=16,
                  seq_length=256, vocab_size=8192)


def comm_heavy_plan(microbatches=4):
    topo = homogeneous_topology(4, NICType.ETHERNET, gpus_per_node=1)
    parallel = ParallelConfig(tensor=1, pipeline=2, data=2,
                              micro_batch_size=1,
                              global_batch_size=2 * microbatches)
    return HolmesScheduler().plan(topo, parallel, MODEL)


class TestMeasuredOverlap:
    def test_hidden_fraction_grows_with_backward_window(self):
        """More microbatches = a longer backward window for background
        buckets to drain into; the measured hidden fraction must grow
        monotonically with it, and with a single microbatch there is no
        window at all — every byte of sync is exposed."""
        fractions = []
        for m in (1, 4, 16):
            result = TrainingSimulation(
                comm_heavy_plan(m), MODEL, optimizer=STRATEGIES["overlapped"]
            ).run()
            fractions.append(result.metrics.hidden_sync_fraction)
        assert fractions[0] == 0.0
        assert fractions[0] < fractions[1] < fractions[2]
        assert fractions[2] > 0.5

    def test_exposed_shrinks_as_window_grows(self):
        small = TrainingSimulation(
            comm_heavy_plan(1), MODEL, optimizer=STRATEGIES["overlapped"]
        ).run()
        large = TrainingSimulation(
            comm_heavy_plan(16), MODEL, optimizer=STRATEGIES["overlapped"]
        ).run()
        assert large.metrics.exposed_sync_time < small.metrics.exposed_sync_time

    def test_overlap_efficiency_is_not_an_engine_input(self):
        """The strategy's ``overlap_efficiency`` survives only as the
        analytic oracle's hiding fraction — executed runs must be bit-for-
        bit identical whatever its value, because hiding is measured."""
        plan = comm_heavy_plan()
        blunt = TrainingSimulation(
            plan, MODEL, optimizer=make_overlapped(0.0)
        ).run()
        sharp = TrainingSimulation(
            plan, MODEL, optimizer=make_overlapped(0.9)
        ).run()
        assert blunt.iteration_time == sharp.iteration_time
        assert (blunt.metrics.hidden_sync_fraction
                == sharp.metrics.hidden_sync_fraction)
        assert (blunt.metrics.exposed_sync_time
                == sharp.metrics.exposed_sync_time)

    def test_non_overlapped_strategy_hides_nothing(self):
        plan = comm_heavy_plan()
        flat = TrainingSimulation(
            plan, MODEL, optimizer=STRATEGIES["distributed"]
        ).run()
        assert flat.metrics.hidden_sync_time == 0.0
        assert flat.metrics.hidden_sync_fraction == 0.0
        assert flat.metrics.exposed_sync_time > 0.0

    def test_overlapped_beats_distributed_on_comm_heavy_plan(self):
        plan = comm_heavy_plan()
        flat = TrainingSimulation(
            plan, MODEL, optimizer=STRATEGIES["distributed"]
        ).run()
        overlapped = TrainingSimulation(
            plan, MODEL, optimizer=STRATEGIES["overlapped"]
        ).run()
        assert overlapped.iteration_time < flat.iteration_time
        assert overlapped.metrics.hidden_sync_time > 0.0

    def test_sync_times_expose_measured_components(self):
        result = TrainingSimulation(
            comm_heavy_plan(), MODEL, optimizer=STRATEGIES["overlapped"]
        ).run()
        for times in result.sync_times:
            assert "exposed" in times and "hidden" in times
        # exposed reported on metrics is the critical group's flush wall time
        assert result.metrics.exposed_sync_time == pytest.approx(
            max(t["exposed"] for t in result.sync_times)
        )

    def test_profile_report_carries_measured_overlap(self):
        from repro.obs.report import build_report, render_report, validate_report

        result = TrainingSimulation(
            comm_heavy_plan(), MODEL, optimizer=STRATEGIES["overlapped"]
        ).run()
        report = build_report(result)
        validate_report(report)
        metrics = report["metrics"]
        assert metrics["sync_hidden_seconds"] > 0.0
        assert metrics["sync_exposed_seconds"] > 0.0
        assert 0.0 < metrics["sync_hidden_fraction"] < 1.0
        assert "measured overlap" in render_report(report)


class TestBrownoutOnDPGroupNIC:
    """Issue acceptance: a link brownout on a node inside a DP group must
    lengthen the *executed* gradient sync and surface as collective time
    in the attribution budget — emergently, through the shared send path,
    not through any analytic degradation term."""

    @pytest.fixture(scope="class")
    def runs(self):
        plan = comm_heavy_plan()
        healthy = TrainingSimulation(plan, MODEL).run()
        brownout = FaultPlan((
            FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADE,
                       node=0, factor=0.25),
        ))
        degraded = TrainingSimulation(plan, MODEL, fault_plan=brownout).run()
        return healthy, degraded

    def test_executed_grads_sync_lengthens(self, runs):
        healthy, degraded = runs
        assert degraded.reduce_scatter_time() > 1.5 * healthy.reduce_scatter_time()
        assert (degraded.metrics.exposed_sync_time
                > 1.5 * healthy.metrics.exposed_sync_time)

    def test_collective_attribution_grows(self, runs):
        healthy, degraded = runs
        healthy_coll = healthy.attribution.budget.get(Category.COLLECTIVE, 0.0)
        degraded_coll = degraded.attribution.budget.get(Category.COLLECTIVE, 0.0)
        assert healthy_coll > 0.0
        assert degraded_coll > 1.5 * healthy_coll

    def test_iteration_slowdown_is_real(self, runs):
        healthy, degraded = runs
        assert degraded.iteration_time > healthy.iteration_time
