"""Tests for the training-step simulator.

These use a small synthetic machine (2 GPUs per node) so runs are fast, and
verify structural properties: determinism, schedule completeness, bubble
behaviour, sync accounting, and sensitivity to the policies the paper varies.
"""

import pytest

from repro.core.engine import TrainingSimulation
from repro.core.optimizer import STRATEGIES
from repro.core.scheduler import HolmesScheduler
from repro.errors import ConfigurationError
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology, make_topology
from repro.model.config import GPTConfig
from repro.parallel.degrees import ParallelConfig

MODEL = GPTConfig(num_layers=8, hidden_size=512, num_attention_heads=8,
                  seq_length=256, vocab_size=4096)


def small_plan(topo, t=1, p=2, mbs=2, batch=None, **plan_kwargs):
    d = topo.world_size // (t * p)
    parallel = ParallelConfig(tensor=t, pipeline=p, data=d,
                              micro_batch_size=mbs,
                              global_batch_size=batch or mbs * d * 4)
    return HolmesScheduler().plan(topo, parallel, MODEL, **plan_kwargs)


@pytest.fixture
def ib_topo():
    return homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)


@pytest.fixture
def hybrid_topo():
    return make_topology(
        [(1, NICType.ROCE), (1, NICType.INFINIBAND)],
        inter_cluster_rdma=False, gpus_per_node=2,
    )


class TestBasicRun:
    def test_run_completes_and_reports(self, ib_topo):
        result = TrainingSimulation(small_plan(ib_topo), MODEL).run()
        assert result.iteration_time > 0
        assert result.tflops > 0
        assert result.throughput > 0
        assert result.optimizer_name == "distributed"

    def test_deterministic(self, ib_topo):
        plan = small_plan(ib_topo)
        r1 = TrainingSimulation(plan, MODEL).run()
        r2 = TrainingSimulation(plan, MODEL).run()
        assert r1.iteration_time == r2.iteration_time

    def test_all_compute_ops_traced(self, ib_topo):
        plan = small_plan(ib_topo)
        result = TrainingSimulation(plan, MODEL).run()
        m = plan.parallel.num_microbatches
        n = ib_topo.world_size
        assert len(result.trace.by_label("forward")) == m * n
        assert len(result.trace.by_label("backward")) == m * n

    def test_metrics_consistent_with_iteration_time(self, ib_topo):
        plan = small_plan(ib_topo)
        result = TrainingSimulation(plan, MODEL).run()
        assert result.metrics.throughput == pytest.approx(
            plan.parallel.global_batch_size / result.iteration_time
        )

    def test_pipeline_degree_one(self, ib_topo):
        plan = small_plan(ib_topo, p=1)
        result = TrainingSimulation(plan, MODEL).run()
        assert result.iteration_time > 0

    def test_gpipe_schedule_runs(self, ib_topo):
        plan = small_plan(ib_topo)
        result = TrainingSimulation(plan, MODEL, schedule="gpipe").run()
        assert result.iteration_time > 0

    def test_interleaved_schedule_runs(self, ib_topo):
        plan = small_plan(ib_topo, batch=16)
        result = TrainingSimulation(
            plan, MODEL, schedule="interleaved", num_chunks=2
        ).run()
        assert result.iteration_time > 0

    def test_interleaved_reduces_iteration_time_with_pipeline_bubble(self):
        """With few microbatches the bubble dominates; interleaving shrinks
        it (paper S4.1 uses the interleaved schedule).  Uses a model large
        enough that compute dwarfs per-message overheads, and removes the
        fixed iteration overhead so the bubble is the signal."""
        big = GPTConfig(num_layers=8, hidden_size=4096, num_attention_heads=32)
        topo = homogeneous_topology(4, NICType.INFINIBAND, gpus_per_node=2)
        parallel = ParallelConfig(tensor=1, pipeline=4, data=2,
                                  micro_batch_size=1, global_batch_size=8)
        plan = HolmesScheduler().plan(topo, parallel, big)
        base = TrainingSimulation(
            plan, big, schedule="1f1b", iteration_overhead=0.0
        ).run()
        inter = TrainingSimulation(
            plan, big, schedule="interleaved", num_chunks=2,
            iteration_overhead=0.0,
        ).run()
        assert inter.iteration_time < base.iteration_time


class TestValidation:
    def test_unknown_schedule_rejected(self, ib_topo):
        with pytest.raises(ConfigurationError):
            TrainingSimulation(small_plan(ib_topo), MODEL, schedule="magic")

    def test_chunks_without_interleaved_rejected(self, ib_topo):
        with pytest.raises(ConfigurationError):
            TrainingSimulation(small_plan(ib_topo), MODEL, num_chunks=2)

    def test_too_many_chunks_rejected(self, ib_topo):
        with pytest.raises(ConfigurationError):
            TrainingSimulation(
                small_plan(ib_topo), MODEL, schedule="interleaved", num_chunks=9
            )

    def test_negative_overhead_rejected(self, ib_topo):
        with pytest.raises(ConfigurationError):
            TrainingSimulation(small_plan(ib_topo), MODEL, iteration_overhead=-1.0)


class TestCommunicationEffects:
    def test_ethernet_slower_than_ib(self):
        ib = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)
        eth = homogeneous_topology(2, NICType.ETHERNET, gpus_per_node=2)
        t_ib = TrainingSimulation(small_plan(ib), MODEL).run().iteration_time
        t_eth = TrainingSimulation(small_plan(eth), MODEL).run().iteration_time
        assert t_eth > t_ib

    def test_force_ethernet_matches_heterogeneity_penalty(self, ib_topo):
        plan = small_plan(ib_topo)
        fast = TrainingSimulation(plan, MODEL).run()
        forced = TrainingSimulation(plan, MODEL, force_ethernet=True).run()
        assert forced.iteration_time > fast.iteration_time

    def test_sync_times_populated_per_stage(self, ib_topo):
        plan = small_plan(ib_topo)
        result = TrainingSimulation(plan, MODEL).run()
        assert len(result.sync_times) == 2
        for times in result.sync_times:
            assert "reduce_scatter" in times
            assert "allgather" in times
            assert "exposed" in times

    def test_reduce_scatter_time_reported(self, ib_topo):
        result = TrainingSimulation(small_plan(ib_topo), MODEL).run()
        assert result.reduce_scatter_time() > 0

    def test_allreduce_strategy_reports_allreduce(self, ib_topo):
        result = TrainingSimulation(
            small_plan(ib_topo), MODEL, optimizer=STRATEGIES["allreduce"]
        ).run()
        assert result.reduce_scatter_time() > 0  # falls back to allreduce
        assert "allreduce" in result.sync_times[0]

    def test_overlap_reduces_iteration_time(self, ib_topo):
        plan = small_plan(ib_topo)
        plain = TrainingSimulation(
            plan, MODEL, optimizer=STRATEGIES["distributed"]
        ).run()
        overlapped = TrainingSimulation(
            plan, MODEL, optimizer=STRATEGIES["overlapped"]
        ).run()
        assert overlapped.iteration_time < plain.iteration_time

    def test_audit_attached(self, hybrid_topo):
        plan = small_plan(hybrid_topo)
        result = TrainingSimulation(plan, MODEL).run()
        assert result.audit.fully_selected  # Holmes placement

    def test_roce_drag_slows_backward(self):
        roce = homogeneous_topology(2, NICType.ROCE, gpus_per_node=2)
        ib = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)
        r_roce = TrainingSimulation(small_plan(roce), MODEL).run()
        r_ib = TrainingSimulation(small_plan(ib), MODEL).run()
        bwd_roce = r_roce.trace.mean_time("backward")
        bwd_ib = r_ib.trace.mean_time("backward")
        assert bwd_roce > bwd_ib


class TestTensorParallelism:
    def test_tp_splits_compute_on_large_layers(self):
        """For large layers, t=2 forward spans shorten despite the added
        NVLink all-reduces (for tiny layers TP comm dominates — also
        realistic, and asserted in the second half)."""
        big = GPTConfig(num_layers=8, hidden_size=4096, num_attention_heads=32)
        topo = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)

        def run(t, model):
            d = topo.world_size // (t * 2)
            parallel = ParallelConfig(tensor=t, pipeline=2, data=d,
                                      micro_batch_size=2,
                                      global_batch_size=2 * d * 4)
            plan = HolmesScheduler().plan(topo, parallel, model)
            return TrainingSimulation(plan, model).run()

        r1, r2 = run(1, big), run(2, big)
        assert r2.trace.mean_time("forward") < r1.trace.mean_time("forward")
        # Tiny layers: TP communication outweighs the compute split.
        s1, s2 = run(1, MODEL), run(2, MODEL)
        assert s2.trace.mean_time("forward") > s1.trace.mean_time("forward")


class TestPartitionEffects:
    def test_uneven_partition_changes_stage_times(self, ib_topo):
        plan = small_plan(ib_topo, partition_strategy="uniform")
        sim = TrainingSimulation(plan, MODEL)
        work = sim._chunk_work(
            __import__("repro.network.fabric", fromlist=["Fabric"]).Fabric(
                ib_topo
            )
        )
        assert work[0][0].forward_time == pytest.approx(work[1][0].forward_time, rel=0.3)


class TestRecomputation:
    def test_disabling_recompute_speeds_backward(self, ib_topo):
        plan = small_plan(ib_topo)
        on = TrainingSimulation(plan, MODEL, recompute_activations=True).run()
        off = TrainingSimulation(plan, MODEL, recompute_activations=False).run()
        # Backward drops from 3 to 2 forward-equivalents.
        assert off.trace.mean_time("backward") < on.trace.mean_time("backward")
        assert off.iteration_time < on.iteration_time
        ratio = off.trace.mean_time("backward") / on.trace.mean_time("backward")
        assert ratio == pytest.approx(2.0 / 3.0, rel=0.05)

    def test_forward_unchanged(self, ib_topo):
        plan = small_plan(ib_topo)
        on = TrainingSimulation(plan, MODEL, recompute_activations=True).run()
        off = TrainingSimulation(plan, MODEL, recompute_activations=False).run()
        assert off.trace.mean_time("forward") == pytest.approx(
            on.trace.mean_time("forward")
        )

    def test_reported_tflops_keeps_eq6_convention(self, ib_topo):
        """Eq. 6 counts recompute FLOPs; disabling recomputation makes the
        iteration faster, so the Eq. 6-based TFLOPS metric goes *up* (the
        hardware-FLOPs convention the paper inherits from Megatron)."""
        plan = small_plan(ib_topo)
        on = TrainingSimulation(plan, MODEL, recompute_activations=True).run()
        off = TrainingSimulation(plan, MODEL, recompute_activations=False).run()
        assert off.tflops > on.tflops


class TestStragglers:
    """Failure injection: one slow GPU in a synchronous job."""

    def test_one_straggler_stretches_everyone(self, ib_topo):
        plan = small_plan(ib_topo)
        healthy = TrainingSimulation(plan, MODEL).run()
        sick = TrainingSimulation(plan, MODEL, stragglers={0: 2.0}).run()
        assert sick.iteration_time > healthy.iteration_time

    def test_straggler_cost_is_global_not_local(self, ib_topo):
        """Slowing 1 of 4 GPUs by 2x costs far more than 1/4 of 2x:
        synchronous training amplifies stragglers (the classic result)."""
        plan = small_plan(ib_topo)
        healthy = TrainingSimulation(
            plan, MODEL, iteration_overhead=0.0
        ).run()
        sick = TrainingSimulation(
            plan, MODEL, iteration_overhead=0.0, stragglers={0: 2.0}
        ).run()
        slowdown = sick.iteration_time / healthy.iteration_time
        assert slowdown > 1.3  # one slow rank drags the whole pipeline

    def test_straggler_in_different_stage_also_hurts(self, ib_topo):
        plan = small_plan(ib_topo)
        last_rank = ib_topo.world_size - 1
        healthy = TrainingSimulation(plan, MODEL).run()
        sick = TrainingSimulation(
            plan, MODEL, stragglers={last_rank: 1.5}
        ).run()
        assert sick.iteration_time > healthy.iteration_time

    def test_factor_below_one_rejected(self, ib_topo):
        with pytest.raises(ConfigurationError):
            TrainingSimulation(small_plan(ib_topo), MODEL,
                               stragglers={0: 0.5})

    def test_uniform_slowdown_scales_compute(self, ib_topo):
        plan = small_plan(ib_topo)
        healthy = TrainingSimulation(plan, MODEL, iteration_overhead=0.0).run()
        all_slow = TrainingSimulation(
            plan, MODEL, iteration_overhead=0.0,
            stragglers={r: 2.0 for r in range(ib_topo.world_size)},
        ).run()
        # Compute doubled; comm unchanged: between 1x and 2x, near 2x.
        ratio = all_slow.iteration_time / healthy.iteration_time
        assert 1.5 < ratio <= 2.05


class TestTiedEmbeddings:
    def test_tying_adds_cost(self, ib_topo):
        plan = small_plan(ib_topo)
        untied = TrainingSimulation(plan, MODEL).run()
        tied = TrainingSimulation(plan, MODEL, tie_embeddings=True).run()
        assert tied.iteration_time > untied.iteration_time
        assert tied.trace.by_label("embedding-grads-allreduce")

    def test_tying_hurts_more_across_clusters(self, hybrid_topo, ib_topo):
        """The embedding all-reduce rides the pipeline transport: cheap on
        intra-cluster RDMA, expensive over the inter-cluster Ethernet."""

        def cost_of_tying(topo):
            plan = small_plan(topo)
            untied = TrainingSimulation(plan, MODEL).run().iteration_time
            tied = TrainingSimulation(
                plan, MODEL, tie_embeddings=True
            ).run().iteration_time
            return tied - untied

        assert cost_of_tying(hybrid_topo) > cost_of_tying(ib_topo)

    def test_no_effect_without_pipeline(self, ib_topo):
        plan = small_plan(ib_topo, p=1)
        untied = TrainingSimulation(plan, MODEL).run()
        tied = TrainingSimulation(plan, MODEL, tie_embeddings=True).run()
        assert tied.iteration_time == untied.iteration_time
