"""Tests for the long-run campaign simulator, including the mutual
validation against the analytic Young/Daly goodput."""

import numpy as np
import pytest

from repro.core.faults import CheckpointPolicy
from repro.core.longrun import simulate_campaign
from repro.errors import ConfigurationError

POLICY = CheckpointPolicy(checkpoint_time=60.0, restart_time=300.0,
                          mtbf=6 * 3600.0)


class TestCampaign:
    def test_accounting_closes(self):
        result = simulate_campaign(POLICY, iteration_time=10.0,
                                   horizon=24 * 3600.0, seed=1)
        total = (result.useful_time + result.checkpoint_time
                 + result.lost_time + result.restart_time)
        assert total == pytest.approx(result.horizon, rel=1e-9)

    def test_no_failures_without_horizon_reaching_mtbf(self):
        lucky = CheckpointPolicy(60.0, 300.0, mtbf=1e12)
        result = simulate_campaign(lucky, 10.0, horizon=3600.0, seed=2)
        assert result.num_failures == 0
        assert result.lost_time == 0.0
        assert result.goodput > 0.9

    def test_deterministic_by_seed(self):
        a = simulate_campaign(POLICY, 10.0, 24 * 3600.0, seed=7)
        b = simulate_campaign(POLICY, 10.0, 24 * 3600.0, seed=7)
        assert a.goodput == b.goodput
        assert a.num_failures == b.num_failures

    def test_failures_cost_progress(self):
        churn = CheckpointPolicy(60.0, 300.0, mtbf=1800.0)
        calm = CheckpointPolicy(60.0, 300.0, mtbf=7 * 24 * 3600.0)
        bad = simulate_campaign(churn, 10.0, 48 * 3600.0, seed=3)
        good = simulate_campaign(calm, 10.0, 48 * 3600.0, seed=3)
        assert bad.goodput < good.goodput
        assert bad.num_failures > good.num_failures

    def test_simulation_converges_to_analytic_goodput(self):
        """Over a long horizon (many failures) the simulated goodput must
        land near the Young/Daly first-order prediction — the analytic and
        stochastic models validate each other."""
        horizon = 1000 * POLICY.mtbf  # ~1000 failures
        goodputs = [
            simulate_campaign(POLICY, 10.0, horizon, seed=s).goodput
            for s in range(3)
        ]
        analytic = POLICY.goodput_fraction()
        assert np.mean(goodputs) == pytest.approx(analytic, abs=0.01)

    def test_optimal_interval_beats_bad_intervals_in_simulation(self):
        horizon = 500 * POLICY.mtbf
        best = simulate_campaign(POLICY, 10.0, horizon, seed=11).goodput
        too_often = simulate_campaign(
            POLICY, 10.0, horizon, interval=120.0, seed=11
        ).goodput
        too_rare = simulate_campaign(
            POLICY, 10.0, horizon, interval=POLICY.mtbf, seed=11
        ).goodput
        assert best > too_often
        assert best > too_rare

    def test_event_log_structure(self):
        result = simulate_campaign(POLICY, 10.0, 12 * 3600.0, seed=5)
        kinds = {e.kind for e in result.events}
        assert "checkpoint" in kinds
        times = [e.time for e in result.events]
        assert times == sorted(times)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(iteration_time=0.0, horizon=100.0),
            dict(iteration_time=1.0, horizon=0.0),
            dict(iteration_time=1.0, horizon=100.0, interval=0.0),
        ],
    )
    def test_invalid_args_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            simulate_campaign(POLICY, **kwargs)
