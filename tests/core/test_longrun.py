"""Tests for the long-run campaign simulator, including the mutual
validation against the analytic Young/Daly goodput."""

import numpy as np
import pytest

from repro.core.faults import CheckpointPolicy
from repro.core.longrun import (
    ElasticPolicy,
    elastic_goodput_analytic,
    simulate_campaign,
    simulate_elastic_campaign,
)
from repro.errors import ConfigurationError

POLICY = CheckpointPolicy(checkpoint_time=60.0, restart_time=300.0,
                          mtbf=6 * 3600.0)


class TestCampaign:
    def test_accounting_closes(self):
        result = simulate_campaign(POLICY, iteration_time=10.0,
                                   horizon=24 * 3600.0, seed=1)
        total = (result.useful_time + result.checkpoint_time
                 + result.lost_time + result.restart_time)
        assert total == pytest.approx(result.horizon, rel=1e-9)

    def test_no_failures_without_horizon_reaching_mtbf(self):
        lucky = CheckpointPolicy(60.0, 300.0, mtbf=1e12)
        result = simulate_campaign(lucky, 10.0, horizon=3600.0, seed=2)
        assert result.num_failures == 0
        assert result.lost_time == 0.0
        assert result.goodput > 0.9

    def test_deterministic_by_seed(self):
        a = simulate_campaign(POLICY, 10.0, 24 * 3600.0, seed=7)
        b = simulate_campaign(POLICY, 10.0, 24 * 3600.0, seed=7)
        assert a.goodput == b.goodput
        assert a.num_failures == b.num_failures

    def test_failures_cost_progress(self):
        churn = CheckpointPolicy(60.0, 300.0, mtbf=1800.0)
        calm = CheckpointPolicy(60.0, 300.0, mtbf=7 * 24 * 3600.0)
        bad = simulate_campaign(churn, 10.0, 48 * 3600.0, seed=3)
        good = simulate_campaign(calm, 10.0, 48 * 3600.0, seed=3)
        assert bad.goodput < good.goodput
        assert bad.num_failures > good.num_failures

    def test_simulation_converges_to_analytic_goodput(self):
        """Over a long horizon (many failures) the simulated goodput must
        land near the Young/Daly first-order prediction — the analytic and
        stochastic models validate each other."""
        horizon = 1000 * POLICY.mtbf  # ~1000 failures
        goodputs = [
            simulate_campaign(POLICY, 10.0, horizon, seed=s).goodput
            for s in range(3)
        ]
        analytic = POLICY.goodput_fraction()
        assert np.mean(goodputs) == pytest.approx(analytic, abs=0.01)

    def test_optimal_interval_beats_bad_intervals_in_simulation(self):
        horizon = 500 * POLICY.mtbf
        best = simulate_campaign(POLICY, 10.0, horizon, seed=11).goodput
        too_often = simulate_campaign(
            POLICY, 10.0, horizon, interval=120.0, seed=11
        ).goodput
        too_rare = simulate_campaign(
            POLICY, 10.0, horizon, interval=POLICY.mtbf, seed=11
        ).goodput
        assert best > too_often
        assert best > too_rare

    def test_event_log_structure(self):
        result = simulate_campaign(POLICY, 10.0, 12 * 3600.0, seed=5)
        kinds = {e.kind for e in result.events}
        assert "checkpoint" in kinds
        times = [e.time for e in result.events]
        assert times == sorted(times)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(iteration_time=0.0, horizon=100.0),
            dict(iteration_time=1.0, horizon=0.0),
            dict(iteration_time=1.0, horizon=100.0, interval=0.0),
        ],
    )
    def test_invalid_args_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            simulate_campaign(POLICY, **kwargs)


class TestIterationCounting:
    def test_fractional_residue_carries_across_segments(self):
        """Work segments shorter than an iteration must still accumulate:
        with interval=1.5 and iteration_time=1.0, each work segment alone
        truncates to 1 iteration, but the residue carries."""
        lucky = CheckpointPolicy(checkpoint_time=1.0, restart_time=1.0,
                                 mtbf=1e12)
        result = simulate_campaign(lucky, iteration_time=1.0, horizon=1000.0,
                                   interval=1.5, seed=0)
        assert result.iterations_completed == int(result.useful_time)
        # The old per-segment truncation lost a third of the iterations.
        assert result.iterations_completed >= 0.99 * result.useful_time

    def test_segments_shorter_than_iteration_still_count(self):
        lucky = CheckpointPolicy(checkpoint_time=1.0, restart_time=1.0,
                                 mtbf=1e12)
        # Every work segment (0.5s) is shorter than one iteration (2.0s).
        result = simulate_campaign(lucky, iteration_time=2.0, horizon=100.0,
                                   interval=0.5, seed=0)
        assert result.iterations_completed == int(result.useful_time / 2.0)
        assert result.iterations_completed > 0

    def test_lost_work_does_not_count(self):
        churn = CheckpointPolicy(checkpoint_time=60.0, restart_time=300.0,
                                 mtbf=1800.0)
        result = simulate_campaign(churn, iteration_time=10.0,
                                   horizon=48 * 3600.0, seed=3)
        assert result.iterations_completed == int(result.useful_time / 10.0)


ELASTIC = ElasticPolicy(num_nodes=16, node_mtbf=16 * 40_000.0,
                        repair_time=600.0, reconfig_time=45.0)
ELASTIC_CKPT = CheckpointPolicy(checkpoint_time=30.0, restart_time=120.0,
                                mtbf=40_000.0)


class TestElasticPolicy:
    def test_job_failure_rate(self):
        assert ELASTIC.job_failure_rate == pytest.approx(16 / (16 * 40_000.0))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_nodes=0, node_mtbf=1.0, repair_time=1.0, reconfig_time=1.0),
            dict(num_nodes=4, node_mtbf=0.0, repair_time=1.0, reconfig_time=1.0),
            dict(num_nodes=4, node_mtbf=1.0, repair_time=-1.0, reconfig_time=1.0),
            dict(num_nodes=4, node_mtbf=1.0, repair_time=1.0, reconfig_time=1.0,
                 correlated_outage_prob=1.5),
            dict(num_nodes=4, node_mtbf=1.0, repair_time=1.0, reconfig_time=1.0,
                 cluster_size=5),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ElasticPolicy(**kwargs)


class TestElasticCampaign:
    def test_deterministic_by_seed(self):
        a = simulate_elastic_campaign(ELASTIC, ELASTIC_CKPT, 10.0, 1e6, seed=5)
        b = simulate_elastic_campaign(ELASTIC, ELASTIC_CKPT, 10.0, 1e6, seed=5)
        assert a.goodput == b.goodput
        assert a.num_failures == b.num_failures
        assert [e.time for e in a.events] == [e.time for e in b.events]

    def test_failures_degrade_but_do_not_stop_training(self):
        result = simulate_elastic_campaign(
            ELASTIC, ELASTIC_CKPT, 10.0, 2e6, seed=1
        )
        assert result.num_failures > 0
        assert result.degraded_time > 0.0
        assert result.min_alive < ELASTIC.num_nodes
        assert result.goodput > 0.8  # elastic: keeps running through churn

    def test_correlated_outages_kill_clusters(self):
        correlated = ElasticPolicy(
            num_nodes=16, node_mtbf=16 * 40_000.0, repair_time=600.0,
            reconfig_time=45.0, correlated_outage_prob=1.0, cluster_size=4,
        )
        result = simulate_elastic_campaign(
            correlated, ELASTIC_CKPT, 10.0, 2e6, seed=2
        )
        outages = [e for e in result.events if "cluster-outage" in e.detail]
        assert outages
        assert result.min_alive <= 16 - 4

    def test_simulation_converges_to_analytic_goodput(self):
        """Seeded elastic campaigns must converge to the first-order
        analytic prediction across >= 5 seeds (mutual validation of the
        simulator and the closed form)."""
        horizon = 5e6  # ~125 failures per seed
        goodputs = [
            simulate_elastic_campaign(
                ELASTIC, ELASTIC_CKPT, 12.0, horizon, seed=s
            ).goodput
            for s in range(6)
        ]
        analytic = elastic_goodput_analytic(ELASTIC, ELASTIC_CKPT)
        assert np.mean(goodputs) == pytest.approx(analytic, abs=0.01)
        # Every individual seed lands in a sane band, not just the mean.
        assert all(abs(g - analytic) < 0.03 for g in goodputs)

    def test_throughput_fractions_mapping_used(self):
        # A brutal degradation map: losing one node halves throughput.
        harsh = {0: 1.0, 1: 0.5}
        soft = simulate_elastic_campaign(
            ELASTIC, ELASTIC_CKPT, 10.0, 2e6, seed=4
        )
        hard = simulate_elastic_campaign(
            ELASTIC, ELASTIC_CKPT, 10.0, 2e6, seed=4,
            throughput_fractions=harsh,
        )
        assert hard.useful_time < soft.useful_time

    def test_wall_clock_accounting_closes(self):
        result = simulate_elastic_campaign(
            ELASTIC, ELASTIC_CKPT, 10.0, 1e6, seed=6
        )
        running = result.horizon - result.checkpoint_time \
            - result.reconfig_time - result.idle_time
        # useful (phi-weighted) can't exceed wall running time.
        assert 0.0 < result.useful_time <= running + 1e-6
