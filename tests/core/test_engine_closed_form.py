"""Closed-form pin: in a scenario simple enough to price by hand, the
engine's iteration time must equal the analytic sum exactly.

Scenario: one node, two GPUs, no pipeline (p=1), data parallel d=2, one
microbatch per replica.  Then

    iteration = m * (fwd + bwd)            # no bubble, no p2p
              + reduce_scatter + allgather # over the NVLink edge
              + iteration_overhead

with every term computable from the model's own formulas.
"""

import pytest

from repro.core.engine import TrainingSimulation
from repro.core.scheduler import HolmesScheduler
from repro.hardware.nic import NICType
from repro.hardware.presets import NVLINK, homogeneous_topology
from repro.model.config import GPTConfig
from repro.model.flops import layer_flops_per_microbatch, logit_flops_per_microbatch
from repro.model.params import embedding_params, transformer_layer_params
from repro.network.costmodel import CollectiveCostModel
from repro.network.transport import Transport, TransportKind
from repro.parallel.degrees import ParallelConfig

MODEL = GPTConfig(num_layers=4, hidden_size=256, num_attention_heads=4,
                  seq_length=128, vocab_size=1024)


class TestClosedForm:
    def test_iteration_time_matches_hand_computation(self):
        topo = homogeneous_topology(1, NICType.INFINIBAND, gpus_per_node=2)
        parallel = ParallelConfig(tensor=1, pipeline=1, data=2,
                                  micro_batch_size=2, global_batch_size=4)
        assert parallel.num_microbatches == 1
        plan = HolmesScheduler().plan(topo, parallel, MODEL,
                                      partition_strategy="uniform")
        overhead = 0.123
        result = TrainingSimulation(
            plan, MODEL, iteration_overhead=overhead
        ).run()

        gpu = topo.node_of(0).gpu
        per_layer = layer_flops_per_microbatch(MODEL, 2)
        logit = logit_flops_per_microbatch(MODEL, 2)
        fwd_flops = MODEL.num_layers * per_layer["forward"] + logit["forward"]
        bwd_flops = MODEL.num_layers * per_layer["backward"] + logit["backward"]
        compute = (fwd_flops + bwd_flops) / gpu.effective_flops

        shard_params = (
            MODEL.num_layers * transformer_layer_params(MODEL)
            + embedding_params(MODEL)
        )
        cost = CollectiveCostModel()
        edge = Transport(TransportKind.NVLINK, NVLINK.bandwidth, NVLINK.latency)
        sync = cost.ring_reduce_scatter(shard_params * 4, 2, edge) + \
            cost.ring_allgather(shard_params * 2, 2, edge)

        expected = compute + sync + overhead
        assert result.iteration_time == pytest.approx(expected, rel=1e-9)

    def test_bubble_matches_analytic_with_balanced_stages(self):
        """p=2 over one node, even layers, m microbatches: the pipeline
        portion is (m + 1) cycle halves... more precisely the makespan of
        balanced 1F1B is (m + p - 1) * (fwd + bwd) / p per the standard
        result when fwd+bwd per stage are uniform and comm is ~free."""
        # Large enough that compute dwarfs the intra-node p2p overheads.
        big = GPTConfig(num_layers=4, hidden_size=2048,
                        num_attention_heads=16, seq_length=1024,
                        vocab_size=8192)
        topo = homogeneous_topology(1, NICType.INFINIBAND, gpus_per_node=2)
        parallel = ParallelConfig(tensor=1, pipeline=2, data=1,
                                  micro_batch_size=1, global_batch_size=8)
        m = parallel.num_microbatches
        plan = HolmesScheduler().plan(topo, parallel, big,
                                      partition_strategy="uniform")
        result = TrainingSimulation(
            plan, big, iteration_overhead=0.0, trace_enabled=True
        ).run()

        fwd = result.trace.by_label("forward")
        bwd = result.trace.by_label("backward")
        # Per-stage op durations differ slightly (logit layer on stage 1);
        # use the slowest stage's cycle for the steady-state bound.
        cycle = max(
            max(s.duration for s in fwd if s.rank == r)
            + max(s.duration for s in bwd if s.rank == r)
            for r in (0, 1)
        )
        lower = m * cycle  # steady state alone
        upper = (m + parallel.pipeline - 1) * cycle * 1.05  # + fill/drain
        assert lower <= result.iteration_time <= upper
