"""Tests for the auto-parallelism planner."""

import pytest

from repro.core.planner import enumerate_configs, evaluate_candidates, plan_best
from repro.errors import ConfigurationError
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology, make_topology
from repro.model.config import GPTConfig

SMALL = GPTConfig(num_layers=8, hidden_size=1024, num_attention_heads=8,
                  seq_length=512, vocab_size=8192)


@pytest.fixture
def topo():
    return homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=4)


class TestEnumeration:
    def test_all_configs_valid(self, topo):
        configs = list(enumerate_configs(topo, SMALL, global_batch_size=64,
                                         micro_batch_size=2))
        assert configs
        for c in configs:
            assert c.world_size == topo.world_size
            assert c.tensor <= topo.gpus_per_node
            assert 64 % c.data == 0

    def test_pipeline_bounded_by_layers(self, topo):
        configs = enumerate_configs(topo, SMALL, 64, micro_batch_size=2)
        assert all(c.pipeline <= SMALL.num_layers for c in configs)

    def test_max_tensor_cap(self, topo):
        configs = enumerate_configs(topo, SMALL, 64, micro_batch_size=2,
                                    max_tensor=1)
        assert all(c.tensor == 1 for c in configs)

    def test_batch_divisibility_filters(self, topo):
        configs = list(enumerate_configs(topo, SMALL, global_batch_size=7,
                                         micro_batch_size=1))
        assert all(7 % c.data == 0 for c in configs)


class TestEvaluation:
    def test_candidates_sorted_by_throughput(self, topo):
        configs = enumerate_configs(topo, SMALL, 64, micro_batch_size=2)
        candidates = evaluate_candidates(topo, SMALL, configs)
        assert candidates
        throughputs = [c.throughput for c in candidates]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_memory_infeasible_dropped(self):
        topo = homogeneous_topology(1, NICType.INFINIBAND, gpus_per_node=2)
        huge = GPTConfig(num_layers=96, hidden_size=12288,
                         num_attention_heads=96)
        with pytest.raises(ConfigurationError, match="does not fit"):
            plan_best(topo, huge, global_batch_size=16, micro_batch_size=1)

    def test_straddling_excluded_by_default(self):
        """Three heterogeneous clusters with p that cannot align: those
        configurations are skipped rather than silently degraded."""
        topo = make_topology(
            [(1, NICType.ROCE), (1, NICType.INFINIBAND)],
            inter_cluster_rdma=False, gpus_per_node=4,
        )
        configs = enumerate_configs(topo, SMALL, 64, micro_batch_size=2)
        candidates = evaluate_candidates(topo, SMALL, configs)
        assert all(c.straddling_stages == 0 for c in candidates)

    def test_plan_best_top_k(self, topo):
        best = plan_best(topo, SMALL, 64, micro_batch_size=2, top_k=3)
        assert 1 <= len(best) <= 3

    def test_describe(self, topo):
        best = plan_best(topo, SMALL, 64, micro_batch_size=2, top_k=1)[0]
        text = best.describe()
        assert "TFLOPS" in text and "t=" in text


class TestPlannerChoices:
    def test_hybrid_machine_prefers_cluster_aligned_pipeline(self):
        """On a RoCE+IB pair of clusters the planner's best plans use
        pipeline parallelism across the boundary (p even), never DP."""
        topo = make_topology(
            [(1, NICType.ROCE), (1, NICType.INFINIBAND)],
            inter_cluster_rdma=False, gpus_per_node=4,
        )
        best = plan_best(topo, SMALL, 64, micro_batch_size=2, top_k=3)
        for candidate in best:
            assert candidate.parallel.pipeline % 2 == 0
