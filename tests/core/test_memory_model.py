"""Tests for the GPU memory feasibility model."""

import pytest

from repro.core.memory_model import (
    estimate_memory,
    fits_in_memory,
    stage_parameter_count,
)
from repro.core.partition import uniform_partition
from repro.errors import ConfigurationError
from repro.hardware.presets import A100
from repro.model.config import GPTConfig
from repro.model.params import parameter_count
from repro.parallel.degrees import ParallelConfig


@pytest.fixture
def pg7_model():
    return GPTConfig(num_layers=48, hidden_size=8192, num_attention_heads=64)


@pytest.fixture
def pg1_model():
    return GPTConfig(num_layers=30, hidden_size=3072, num_attention_heads=32)


class TestStageParams:
    def test_stage0_includes_embedding(self, pg1_model):
        layers = uniform_partition(30, 2)
        s0 = stage_parameter_count(pg1_model, layers, 0)
        s1 = stage_parameter_count(pg1_model, layers, 1)
        assert s0 > s1
        assert s0 + s1 == parameter_count(pg1_model)

    def test_out_of_range_stage_rejected(self, pg1_model):
        with pytest.raises(ConfigurationError):
            stage_parameter_count(pg1_model, [15, 15], 2)


class TestEstimate:
    def test_components_positive(self, pg1_model):
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        estimate = estimate_memory(pg1_model, parallel, [15, 15])
        assert estimate.weights_and_grads > 0
        assert estimate.optimizer_state > 0
        assert estimate.activations > 0
        assert estimate.total == (
            estimate.weights_and_grads + estimate.optimizer_state
            + estimate.activations + estimate.reserve
        )

    def test_wrong_partition_length_rejected(self, pg1_model):
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        with pytest.raises(ConfigurationError):
            estimate_memory(pg1_model, parallel, [10, 10, 10])

    def test_tensor_parallel_shrinks_memory(self, pg7_model):
        layers = uniform_partition(48, 2)
        p_t1 = ParallelConfig(tensor=1, pipeline=2, data=32,
                              micro_batch_size=4, global_batch_size=1536)
        p_t8 = ParallelConfig(tensor=8, pipeline=2, data=4,
                              micro_batch_size=4, global_batch_size=1536)
        m1 = estimate_memory(pg7_model, p_t1, layers)
        m8 = estimate_memory(pg7_model, p_t8, layers)
        assert m8.total < m1.total

    def test_distributed_optimizer_shards_adam(self, pg1_model):
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        sharded = estimate_memory(pg1_model, parallel, [15, 15],
                                  distributed_optimizer=True)
        replicated = estimate_memory(pg1_model, parallel, [15, 15],
                                     distributed_optimizer=False)
        assert sharded.optimizer_state * 16 == pytest.approx(
            replicated.optimizer_state, rel=0.01
        )


class TestPaperConstraint:
    """PG7/8 set t=8 'due to the large parameter size' — our model must
    reproduce that necessity."""

    def test_39b_needs_tensor_parallelism(self, pg7_model):
        layers = uniform_partition(48, 2)
        p_t1 = ParallelConfig(tensor=1, pipeline=2, data=32,
                              micro_batch_size=4, global_batch_size=1536)
        assert not fits_in_memory(pg7_model, p_t1, layers, A100)

    def test_39b_fits_at_t8(self, pg7_model):
        layers = uniform_partition(48, 2)
        p_t8 = ParallelConfig(tensor=8, pipeline=2, data=4,
                              micro_batch_size=4, global_batch_size=1536)
        assert fits_in_memory(pg7_model, p_t8, layers, A100)

    def test_3_6b_fits_at_t1(self, pg1_model):
        """Groups 1-6 run at tensor parallel 1 — they must fit that way."""
        layers = uniform_partition(30, 2)
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        assert fits_in_memory(pg1_model, parallel, layers, A100)

    def test_utilization_fraction(self, pg1_model):
        layers = uniform_partition(30, 2)
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        estimate = estimate_memory(pg1_model, parallel, layers)
        assert 0.0 < estimate.utilization(A100) < 1.0


class TestZeroStages:
    def test_stages_monotonically_shrink_memory(self, pg1_model):
        from repro.core.partition import uniform_partition

        layers = uniform_partition(30, 2)
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        totals = [
            estimate_memory(pg1_model, parallel, layers, zero_stage=z).total
            for z in range(4)
        ]
        assert totals == sorted(totals, reverse=True)
        assert totals[3] < totals[0]

    def test_stage1_equals_distributed_default(self, pg1_model):
        from repro.core.partition import uniform_partition

        layers = uniform_partition(30, 2)
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        default = estimate_memory(pg1_model, parallel, layers)
        explicit = estimate_memory(pg1_model, parallel, layers, zero_stage=1)
        assert default.total == explicit.total

    def test_invalid_stage_rejected(self, pg1_model):
        from repro.core.partition import uniform_partition

        layers = uniform_partition(30, 2)
        parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                                  micro_batch_size=4, global_batch_size=768)
        with pytest.raises(ConfigurationError):
            estimate_memory(pg1_model, parallel, layers, zero_stage=4)
