"""Tests for pipeline partitioning (uniform + paper Eq. 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import (
    partition_boundaries,
    self_adapting_partition,
    stage_speed_from_nic,
    uniform_partition,
)
from repro.errors import PartitionError
from repro.hardware.nic import NICType


class TestUniformPartition:
    def test_even_split(self):
        assert uniform_partition(30, 2) == [15, 15]
        assert uniform_partition(36, 3) == [12, 12, 12]

    def test_remainder_to_earlier_stages(self):
        assert uniform_partition(10, 3) == [4, 3, 3]

    def test_single_stage(self):
        assert uniform_partition(7, 1) == [7]

    def test_too_few_layers_rejected(self):
        with pytest.raises(PartitionError):
            uniform_partition(2, 3)

    def test_invalid_stage_count(self):
        with pytest.raises(PartitionError):
            uniform_partition(4, 0)

    @given(layers=st.integers(1, 200), stages=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_property_sums_and_balance(self, layers, stages):
        if layers < stages:
            with pytest.raises(PartitionError):
                uniform_partition(layers, stages)
            return
        counts = uniform_partition(layers, stages)
        assert sum(counts) == layers
        assert max(counts) - min(counts) <= 1
        assert all(c >= 1 for c in counts)


class TestSelfAdaptingPartition:
    def test_paper_example_ib_vs_roce(self):
        """Eq. 2 with Table 1 proxies and alpha=1.05: the IB stage of a
        36-layer model at p=2 receives more layers than the RoCE stage."""
        speeds = [stage_speed_from_nic(NICType.ROCE),
                  stage_speed_from_nic(NICType.INFINIBAND)]
        counts = self_adapting_partition(36, speeds, alpha=1.05)
        assert sum(counts) == 36
        assert counts[1] > counts[0]  # IB stage gets more
        # floor(1.05 * 160/357 * 36) = 16 for RoCE.
        assert counts == [16, 20]

    def test_equal_speeds_equal_split(self):
        counts = self_adapting_partition(30, [100.0, 100.0], alpha=1.0)
        assert counts == [15, 15]

    def test_three_stages_ordering(self):
        counts = self_adapting_partition(36, [122.0, 160.0, 197.0])
        assert sum(counts) == 36
        assert counts[0] <= counts[1] <= counts[2]

    def test_every_stage_gets_a_layer(self):
        counts = self_adapting_partition(4, [1.0, 1000.0, 1.0, 1.0])
        assert counts == [1, 1, 1, 1]

    def test_alpha_biases_toward_fast(self):
        mild = self_adapting_partition(100, [100.0, 200.0], alpha=1.0)
        strong = self_adapting_partition(100, [100.0, 200.0], alpha=1.3)
        assert strong[1] >= mild[1]

    @pytest.mark.parametrize(
        "layers,speeds,alpha",
        [
            (0, [1.0], 1.0),
            (4, [], 1.0),
            (4, [1.0, -1.0], 1.0),
            (4, [1.0, 2.0], 0.0),
            (1, [1.0, 2.0], 1.0),  # fewer layers than stages
        ],
    )
    def test_invalid_inputs_rejected(self, layers, speeds, alpha):
        with pytest.raises(PartitionError):
            self_adapting_partition(layers, speeds, alpha=alpha)

    @given(
        layers=st.integers(2, 128),
        speeds=st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=8),
        alpha=st.floats(0.5, 1.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_valid_partition(self, layers, speeds, alpha):
        if layers < len(speeds):
            return
        counts = self_adapting_partition(layers, speeds, alpha=alpha)
        assert sum(counts) == layers
        assert all(c >= 1 for c in counts)
        assert len(counts) == len(speeds)

    @given(
        layers=st.integers(8, 96),
        slow=st.floats(50.0, 150.0),
        fast=st.floats(151.0, 400.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_faster_stage_never_fewer_layers(self, layers, slow, fast):
        counts = self_adapting_partition(layers, [slow, fast], alpha=1.05)
        assert counts[1] >= counts[0]


class TestSpeedProxies:
    def test_table1_values(self):
        assert stage_speed_from_nic(NICType.INFINIBAND) == 197.0
        assert stage_speed_from_nic(NICType.ROCE) == 160.0
        assert stage_speed_from_nic(NICType.ETHERNET) == 122.0


class TestBoundaries:
    def test_cumulative_offsets(self):
        assert partition_boundaries([3, 2, 4]) == [0, 3, 5, 9]

    def test_empty_stage_rejected(self):
        with pytest.raises(PartitionError):
            partition_boundaries([3, 0, 2])
