"""Tests for iteration analysis (utilization, bubble, breakdowns)."""

import pytest

from repro.core.analysis import analyze
from repro.core.engine import TrainingSimulation
from repro.core.scheduler import HolmesScheduler
from repro.errors import ConfigurationError
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology
from repro.model.config import GPTConfig
from repro.parallel.degrees import ParallelConfig

MODEL = GPTConfig(num_layers=8, hidden_size=2048, num_attention_heads=16,
                  seq_length=1024, vocab_size=16384)


def run(p=2, m_mult=8, overhead=0.0):
    topo = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)
    d = 4 // p
    parallel = ParallelConfig(tensor=1, pipeline=p, data=d,
                              micro_batch_size=1,
                              global_batch_size=d * m_mult)
    plan = HolmesScheduler().plan(topo, parallel, MODEL,
                                  partition_strategy="uniform")
    return TrainingSimulation(
        plan, MODEL, trace_enabled=True, iteration_overhead=overhead
    ).run()


class TestAnalyze:
    def test_breakdown_covers_iteration(self):
        analysis = analyze(run())
        for rank in analysis.ranks:
            assert rank.total == pytest.approx(analysis.iteration_time, rel=1e-6)
            assert rank.compute > 0
            assert rank.idle >= 0

    def test_rank_count(self):
        analysis = analyze(run())
        assert len(analysis.ranks) == 4

    def test_bubble_close_to_analytic_1f1b(self):
        """Balanced homogeneous pipeline: realised idle fraction tracks
        (p-1)/m within a couple of points (plus small comm waits)."""
        # p=2, d=2, global batch = d * m_mult -> m = 16 microbatches.
        analysis = analyze(run(p=2, m_mult=16))
        expected = (2 - 1) / 16
        assert analysis.bubble_fraction == pytest.approx(expected, abs=0.05)

    def test_no_pipeline_no_bubble(self):
        analysis = analyze(run(p=1, m_mult=8))
        assert analysis.bubble_fraction < 0.05

    def test_utilization_below_one(self):
        analysis = analyze(run())
        assert 0.5 < analysis.mean_utilization < 1.0

    def test_stage_summary_keys(self):
        analysis = analyze(run(p=2))
        summary = analysis.stage_summary()
        assert sorted(summary) == [0, 1]
        for stage in summary.values():
            assert set(stage) == {"compute", "p2p", "collective", "idle",
                                  "utilization"}

    def test_overhead_counts_as_idle(self):
        lean = analyze(run(overhead=0.0))
        padded = analyze(run(overhead=1.0))
        assert padded.bubble_fraction > lean.bubble_fraction

    def test_untraced_run_rejected(self):
        topo = homogeneous_topology(1, NICType.INFINIBAND, gpus_per_node=2)
        parallel = ParallelConfig(tensor=1, pipeline=1, data=2,
                                  micro_batch_size=1, global_batch_size=4)
        plan = HolmesScheduler().plan(topo, parallel, MODEL,
                                      partition_strategy="uniform")
        result = TrainingSimulation(plan, MODEL, trace_enabled=False).run()
        with pytest.raises(ConfigurationError):
            analyze(result)
