"""Tests for the Automatic NIC Selection audit."""

import pytest

from repro.core.nic_selection import audit_parallel_groups
from repro.core.scheduler import HolmesScheduler
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.model.config import GPTConfig
from repro.network.fabric import Fabric
from repro.parallel.degrees import ParallelConfig


@pytest.fixture
def hybrid_topo():
    return make_topology(
        [(2, NICType.ROCE), (2, NICType.INFINIBAND)], inter_cluster_rdma=True
    )


def plan_for(topo, placement_strategy):
    model = GPTConfig(num_layers=30, hidden_size=3072, num_attention_heads=32)
    parallel = ParallelConfig(tensor=1, pipeline=2, data=16,
                              micro_batch_size=4, global_batch_size=768)
    return HolmesScheduler().plan(
        topo, parallel, model,
        placement_strategy=placement_strategy,
        partition_strategy="uniform",
    )


class TestAudit:
    def test_holmes_placement_keeps_dp_on_rdma(self, hybrid_topo):
        plan = plan_for(hybrid_topo, "holmes")
        audit = audit_parallel_groups(Fabric(hybrid_topo), plan.physical_groups)
        assert audit.fully_selected
        assert audit.dp_rdma_fraction == 1.0
        assert audit.dp_groups_degraded == 0

    def test_adversarial_grouping_detected(self, hybrid_topo):
        """Hand-build a DP group mixing IB and RoCE: the audit flags it."""
        fabric = Fabric(hybrid_topo)
        groups = {"data": [[0, 16], [8, 24]], "pipeline": [], "tensor": []}
        audit = audit_parallel_groups(fabric, groups)
        assert not audit.fully_selected
        assert audit.dp_groups_degraded == 2
        assert audit.dp_rdma_fraction == 0.0
        assert len(audit.degraded()) == 2

    def test_trivial_dp_groups_ignored(self, hybrid_topo):
        audit = audit_parallel_groups(
            Fabric(hybrid_topo), {"data": [[0], [1]]}
        )
        assert audit.dp_groups_total == 0
        assert audit.dp_rdma_fraction == 1.0
        assert audit.fully_selected

    def test_reports_cover_all_families(self, hybrid_topo):
        plan = plan_for(hybrid_topo, "holmes")
        audit = audit_parallel_groups(Fabric(hybrid_topo), plan.physical_groups)
        names = {r.name.split("[")[0] for r in audit.reports}
        assert names == {"tensor", "pipeline", "data"}
