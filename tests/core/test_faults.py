"""Tests for fault handling: surviving topologies, replanning, checkpoints."""

import math
import warnings

import pytest

from repro.core.faults import (
    CheckpointPolicy,
    replan_after_failure,
    surviving_topology,
)
from repro.errors import ConfigurationError, TopologyError
from repro.hardware.nic import NICType
from repro.hardware.presets import make_topology
from repro.model.config import GPTConfig

SMALL = GPTConfig(num_layers=8, hidden_size=1024, num_attention_heads=8,
                  seq_length=512, vocab_size=8192)


@pytest.fixture
def topo():
    return make_topology(
        [(2, NICType.ROCE), (2, NICType.INFINIBAND)],
        inter_cluster_rdma=False, gpus_per_node=4,
    )


class TestSurvivingTopology:
    def test_remove_one_node(self, topo):
        survivors = surviving_topology(topo, [1])
        assert survivors.num_nodes == 3
        assert survivors.world_size == 12
        assert survivors.clusters[0].num_nodes == 1

    def test_remove_whole_cluster(self, topo):
        survivors = surviving_topology(topo, [0, 1])
        assert survivors.num_clusters == 1
        assert survivors.clusters[0].nic_type == NICType.INFINIBAND

    def test_rank_renumbering_is_dense(self, topo):
        survivors = surviving_topology(topo, [2])
        assert [d.rank for d in survivors._devices] == list(range(12))

    def test_no_survivors_rejected(self, topo):
        with pytest.raises(TopologyError):
            surviving_topology(topo, [0, 1, 2, 3])

    def test_bad_node_index_rejected(self, topo):
        with pytest.raises(TopologyError):
            surviving_topology(topo, [9])

    def test_original_untouched(self, topo):
        surviving_topology(topo, [0])
        assert topo.num_nodes == 4


class TestReplan:
    def test_degraded_plan_found(self, topo):
        candidates = replan_after_failure(
            topo, [3], SMALL, global_batch_size=48, micro_batch_size=2
        )
        assert candidates
        assert candidates[0].parallel.world_size == 12

    def test_degraded_throughput_lower(self, topo):
        from repro.core.planner import plan_best

        # Batch large enough that compute dominates the fixed per-iteration
        # overhead, so losing a quarter of the GPUs must show up.
        healthy = plan_best(topo, SMALL, 192, micro_batch_size=2, top_k=1)[0]
        degraded = replan_after_failure(
            topo, [0], SMALL, global_batch_size=192, micro_batch_size=2
        )[0]
        assert degraded.throughput < healthy.throughput


class TestCheckpointPolicy:
    def test_young_daly_interval(self):
        policy = CheckpointPolicy(checkpoint_time=50.0, restart_time=300.0,
                                  mtbf=24 * 3600.0)
        assert policy.optimal_interval == pytest.approx(
            math.sqrt(2 * 50 * 24 * 3600)
        )

    def test_goodput_below_one(self):
        policy = CheckpointPolicy(50.0, 300.0, 24 * 3600.0)
        goodput = policy.goodput_fraction()
        assert 0.9 < goodput < 1.0

    def test_optimal_interval_beats_extremes(self):
        policy = CheckpointPolicy(50.0, 300.0, 24 * 3600.0)
        best = policy.goodput_fraction()
        assert best >= policy.goodput_fraction(interval=60.0)
        assert best >= policy.goodput_fraction(interval=12 * 3600.0)

    def test_effective_tflops_scales(self):
        policy = CheckpointPolicy(50.0, 300.0, 24 * 3600.0)
        assert policy.effective_tflops(200.0) == pytest.approx(
            200.0 * policy.goodput_fraction()
        )

    def test_frequent_failures_hurt(self):
        rare = CheckpointPolicy(50.0, 300.0, mtbf=7 * 24 * 3600.0)
        frequent = CheckpointPolicy(50.0, 300.0, mtbf=3600.0)
        assert frequent.goodput_fraction() < rare.goodput_fraction()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(checkpoint_time=0.0, restart_time=1.0, mtbf=10.0),
            dict(checkpoint_time=1.0, restart_time=0.0, mtbf=10.0),
            dict(checkpoint_time=1.0, restart_time=1.0, mtbf=0.0),
            dict(checkpoint_time=20.0, restart_time=1.0, mtbf=10.0),
        ],
    )
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CheckpointPolicy(**kwargs)

    def test_negative_inputs_rejected(self):
        policy = CheckpointPolicy(50.0, 300.0, 24 * 3600.0)
        with pytest.raises(ConfigurationError):
            policy.goodput_fraction(interval=-1.0)
        with pytest.raises(ConfigurationError):
            policy.effective_tflops(-1.0)


class TestSurvivingTopologyEdgeCases:
    def test_duplicate_failed_indices_counted_once(self, topo):
        deduped = surviving_topology(topo, [1, 1, 1])
        assert deduped.num_nodes == 3
        assert deduped.world_size == 12

    def test_kill_entire_cluster_drops_it(self, topo):
        survivors = surviving_topology(topo, [2, 3])
        assert survivors.num_clusters == 1
        assert survivors.clusters[0].nic_type == NICType.ROCE
        assert survivors.world_size == 8

    def test_inter_cluster_rdma_flag_preserved(self):
        rdma_linked = make_topology(
            [(2, NICType.INFINIBAND), (2, NICType.INFINIBAND)],
            inter_cluster_rdma=True, gpus_per_node=4,
        )
        survivors = surviving_topology(rdma_linked, [0])
        assert survivors.inter_cluster_rdma is True
        no_rdma = make_topology(
            [(2, NICType.ROCE), (2, NICType.INFINIBAND)],
            inter_cluster_rdma=False, gpus_per_node=4,
        )
        assert surviving_topology(no_rdma, [0]).inter_cluster_rdma is False

    def test_cluster_ids_stable_after_cluster_loss(self, topo):
        survivors = surviving_topology(topo, [0, 1])
        assert survivors.clusters[0].cluster_id == topo.clusters[1].cluster_id


class TestGoodputWarning:
    def test_unworkable_interval_warns_and_clamps(self):
        policy = CheckpointPolicy(
            checkpoint_time=50.0, restart_time=300.0, mtbf=3600.0
        )
        # A 10000s interval loses > 100% of wall time to failures alone.
        with pytest.warns(RuntimeWarning, match="forward progress"):
            fraction = policy.goodput_fraction(interval=10_000.0)
        assert fraction == 0.0

    def test_healthy_interval_does_not_warn(self):
        policy = CheckpointPolicy(
            checkpoint_time=60.0, restart_time=300.0, mtbf=6 * 3600.0
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            fraction = policy.goodput_fraction()
        assert fraction > 0.5
