"""The seeded scenario sampler: deterministic, valid, and scalable."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.validate.scenarios import (
    ENV_BUILDERS,
    sample_scenarios,
    scaled_topology,
)


class TestSampler:
    def test_same_seed_same_specs(self):
        assert sample_scenarios(10, seed=3) == sample_scenarios(10, seed=3)

    def test_different_seed_differs(self):
        assert sample_scenarios(10, seed=3) != sample_scenarios(10, seed=4)

    def test_names_are_unique(self):
        specs = sample_scenarios(20, seed=0)
        assert len({s.name for s in specs}) == len(specs)

    def test_specs_are_internally_consistent(self):
        for spec in sample_scenarios(30, seed=5):
            assert spec.world_size == spec.nodes * spec.gpus_per_node
            assert spec.world_size % (spec.tensor * spec.pipeline) == 0
            assert spec.env in ENV_BUILDERS
            if spec.schedule == "interleaved":
                assert spec.pipeline >= 2
                assert spec.num_chunks >= 2
                assert spec.num_microbatches % spec.pipeline == 0
            # every sampled spec must survive plan construction
            spec.build(with_faults=False)

    def test_sampled_specs_actually_run(self):
        for spec in sample_scenarios(3, seed=9):
            result = spec.run()
            assert result.makespan > 0


class TestScenarioSpec:
    def test_model_and_parallel_derivation(self, tiny_spec):
        model = tiny_spec.model
        assert model.num_layers == tiny_spec.num_layers
        assert model.hidden_size == tiny_spec.hidden
        par = tiny_spec.parallel
        assert par.tensor == tiny_spec.tensor
        assert par.global_batch_size == (
            tiny_spec.data
            * tiny_spec.micro_batch_size
            * tiny_spec.num_microbatches
        )

    def test_fault_plan_requires_seed(self, tiny_spec, faulted_spec):
        topo = tiny_spec.topology()
        assert tiny_spec.fault_plan(topo) is None
        plan = faulted_spec.fault_plan(topo)
        assert plan is not None and plan.events

    def test_invalid_parallelism_raises(self, tiny_spec):
        bad = dataclasses.replace(tiny_spec, tensor=16)
        with pytest.raises(ReproError):
            bad.build()

    def test_describe_mentions_layout(self, tiny_spec):
        text = tiny_spec.describe()
        assert "t2" in text and "p2" in text and "d2" in text


def _all_nodes(topo):
    return [node for cluster in topo.clusters for node in cluster.nodes]


class TestScaledTopology:
    def test_scaling_multiplies_all_link_bandwidths(self, tiny_spec):
        base = tiny_spec.topology()
        doubled = scaled_topology(base, 2.0)
        for node, scaled_node in zip(_all_nodes(base), _all_nodes(doubled)):
            assert (
                scaled_node.ethernet_nic.bandwidth
                == 2.0 * node.ethernet_nic.bandwidth
            )
            if node.intra_link is not None:
                assert (
                    scaled_node.intra_link.bandwidth
                    == 2.0 * node.intra_link.bandwidth
                )
            if node.rdma_nic is not None:
                assert (
                    scaled_node.rdma_nic.bandwidth
                    == 2.0 * node.rdma_nic.bandwidth
                )

    def test_identity_scale_preserves_topology(self, tiny_spec):
        base = tiny_spec.topology()
        same = scaled_topology(base, 1.0)
        assert same.world_size == base.world_size
        for node, copy in zip(_all_nodes(base), _all_nodes(same)):
            assert copy.ethernet_nic.bandwidth == node.ethernet_nic.bandwidth
