"""Disabled validation hooks must be a true no-op on the hot path.

Mirror of ``tests/simcore/test_tracing_overhead.py``: every sanitizer call
site guards on ``hooks is not None`` (or a prefetched local), so a run
without a :class:`ValidationHooks` performs *zero* sanitizer calls —
checked structurally — and the residual guard cost is micro-benchmarked at
well under 5% of a simulated iteration.
"""

import time

from repro.validate import ValidationHooks


def _min_wall(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledHooksAreNoop:
    def test_default_run_never_touches_the_sanitizer(
        self, tiny_spec, monkeypatch
    ):
        calls = [0]
        for name in (
            "on_engine_step",
            "check_duration",
            "on_resource_grant",
            "on_resource_release",
            "begin_collective",
            "on_collective_step",
            "end_collective_member",
            "on_span",
            "finalize",
        ):
            original = getattr(ValidationHooks, name)

            def counting(self, *args, __orig=original, **kwargs):
                calls[0] += 1
                return __orig(self, *args, **kwargs)

            monkeypatch.setattr(ValidationHooks, name, counting)

        tiny_spec.run()  # validation=None is the default
        assert calls[0] == 0, "a hook fired without any ValidationHooks"

        tiny_spec.run(validation=ValidationHooks())
        assert calls[0] > 500, "sanity: armed hooks do fire"

    def test_virtual_time_unaffected_by_hooks(self, tiny_spec):
        plain = tiny_spec.run()
        checked = tiny_spec.run(validation=ValidationHooks())
        assert checked.makespan == plain.makespan
        assert checked.metrics == plain.metrics


class TestHooksOverheadBudget:
    def test_disabled_guard_overhead_under_5_percent(
        self, tiny_spec, monkeypatch
    ):
        """The per-iteration cost of the ``hooks is None`` guards is <5%.

        Counts how many sanitizer calls an armed iteration performs, then
        times that many ``hooks is not None`` evaluations — exactly what
        the hot call sites pay when validation is off — against the wall
        time of an unarmed iteration. Min-of-N keeps it stable on noisy
        CI machines.
        """
        armed = ValidationHooks()
        tiny_spec.run(validation=armed)
        num_guards = armed.total_checks
        assert num_guards > 1000, "expected a busy sanitized iteration"

        iteration_wall = _min_wall(lambda: tiny_spec.run())

        hooks = None

        def guards():
            sink = False
            for _ in range(num_guards):
                sink = hooks is not None
            return sink

        guard_wall = _min_wall(guards, rounds=5)
        overhead = guard_wall / iteration_wall
        assert overhead < 0.05, (
            f"disabled-validation guards cost {overhead:.1%} of an "
            f"iteration ({num_guards} guards, {guard_wall * 1e3:.2f}ms vs "
            f"{iteration_wall * 1e3:.2f}ms)"
        )
