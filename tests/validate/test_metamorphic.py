"""Metamorphic relations as pytest parametrizations.

Each relation from the registry runs against a small deterministic batch of
sampled scenarios (marker: ``property``). A larger-N sweep rides the ``slow``
marker for nightly CI. The relations themselves encode paper-level physics:
faster links never slow training, stragglers never speed it up, ring
all-reduce cannot beat its slowest link, and rank labels are arbitrary.
"""

import pytest

from repro.validate.metamorphic import (
    RELATIONS,
    check_relation,
    run_validation,
)
from repro.validate.scenarios import sample_scenarios

SMOKE_N = 4
SMOKE_SPECS = sample_scenarios(SMOKE_N, seed=0)

pytestmark = pytest.mark.property


@pytest.mark.parametrize("relation", sorted(RELATIONS))
@pytest.mark.parametrize("spec", SMOKE_SPECS, ids=lambda s: s.name)
def test_relation_holds(relation, spec):
    result = check_relation(relation, spec)
    assert result.passed, (result.error, result.details)


def test_registry_is_complete():
    expected = {
        "bandwidth_monotonic",
        "straggler_monotonic",
        "workload_monotonic",
        "seed_replay",
        "allreduce_slowest_link_bound",
        "rank_relabel_invariant",
        "fidelity_conformance",
    }
    assert set(RELATIONS) == expected
    for name, relation in RELATIONS.items():
        assert relation.name == name
        assert relation.description


def test_run_validation_covers_all_pairs():
    results = run_validation(2, seed=1, relations=["seed_replay"])
    assert len(results) == 2
    assert all(r.relation == "seed_replay" for r in results)
    assert all(r.passed for r in results)


def test_unknown_relation_rejected():
    with pytest.raises(KeyError):
        check_relation("no_such_relation", SMOKE_SPECS[0])


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 123])
def test_larger_sweep(seed):
    """Nightly: every relation over a 12-scenario sample per seed."""
    results = run_validation(12, seed=seed)
    failed = [r for r in results if not r.passed]
    assert not failed, [(r.relation, r.scenario, r.error) for r in failed]
