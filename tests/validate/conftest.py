"""Shared fixtures for the conformance-subsystem tests.

One tiny hybrid scenario (2 nodes x 4 GPUs, toy GPT) is enough to exercise
every sanitizer code path — DP sync collectives, pipeline p2p over the
inter-cluster Ethernet, NIC queueing — in ~20 ms per run.
"""

import pytest

from repro.validate.scenarios import ScenarioSpec


@pytest.fixture(scope="session")
def tiny_spec():
    """Fault-free hybrid scenario with DP sync and pipeline traffic."""
    return ScenarioSpec(
        name="tiny",
        env="hybrid",
        nodes=2,
        gpus_per_node=4,
        num_layers=4,
        hidden=256,
        heads=4,
        tensor=2,
        pipeline=2,
        data=2,
        micro_batch_size=1,
        num_microbatches=4,
    )


@pytest.fixture(scope="session")
def faulted_spec(tiny_spec):
    """The same scenario with a seeded random fault plan."""
    import dataclasses

    return dataclasses.replace(tiny_spec, name="tiny-faulted", fault_seed=11)
