"""The invariant sanitizer: clean runs pass, corrupted simulations raise.

The load-bearing cases are the deliberate corruptions: a cost model that
prices a step negative and an executor that sends the wrong chunk sizes
must both surface as structured ``InvariantViolation`` errors naming the
broken invariant and the offending event — that is the safety net the
"refactor freely" mandate rests on.
"""

import pytest

from repro.collectives.executor import CollectiveExecutor
from repro.errors import InvariantViolation
from repro.network.costmodel import CollectiveCostModel
from repro.simcore.engine import SimEngine
from repro.simcore.resource import Resource
from repro.simcore.trace import TraceRecorder
from repro.validate import ValidationHooks
from repro.validate.replay import trace_digest


class TestCleanRunPasses:
    def test_no_violations_and_counters_published(self, tiny_spec):
        hooks = ValidationHooks()
        result = tiny_spec.run(validation=hooks)
        assert hooks.total_violations == 0
        assert hooks.total_checks > 1000
        # byte conservation actually ran (the scenario has DP sync)
        assert hooks.checks["collective.byte_conservation"] > 0
        assert hooks.checks["causality.time_monotonic"] > 0
        assert hooks.checks["resource.capacity"] > 0
        snapshot = result.registry.snapshot()
        assert "validation_checks_total" in snapshot
        total = sum(snapshot["validation_checks_total"]["series"].values())
        assert total == hooks.total_checks

    def test_faulted_run_passes(self, faulted_spec):
        hooks = ValidationHooks()
        faulted_spec.run(validation=hooks)
        assert hooks.total_violations == 0
        assert hooks.finalized

    def test_virtual_time_identical_with_and_without_hooks(self, tiny_spec):
        plain = tiny_spec.run()
        checked = tiny_spec.run(validation=ValidationHooks())
        assert checked.makespan == plain.makespan
        assert trace_digest(checked.trace) == trace_digest(plain.trace)


class TestCorruptedCostModel:
    def test_negative_step_occupancy_is_caught(self, tiny_spec, monkeypatch):
        """Acceptance criterion: a corrupted cost model raises a structured
        InvariantViolation at the event that consumed the bad price."""
        original = CollectiveCostModel.collective_step_occupancy

        def corrupted(self, nbytes, edge, messages=1):
            return -abs(original(self, nbytes, edge, messages))

        monkeypatch.setattr(
            CollectiveCostModel, "collective_step_occupancy", corrupted
        )
        with pytest.raises(InvariantViolation) as exc_info:
            tiny_spec.run(validation=ValidationHooks())
        violation = exc_info.value
        assert violation.invariant == "causality.duration_sane"
        assert violation.context["seconds"] < 0
        # the bad price surfaces at whichever fabric method consumed it
        assert violation.context["what"] in (
            "collective_step_occupancy", "collective_step_time"
        )
        assert "src" in violation.context and "dst" in violation.context

    def test_corruption_unnoticed_without_hooks(self, tiny_spec, monkeypatch):
        """Sanity: without the sanitizer the same corruption slips through
        (the engine itself rejects only *scheduling* into the past)."""
        monkeypatch.setattr(
            CollectiveCostModel,
            "collective_step_occupancy",
            lambda self, nbytes, edge, messages=1: 0.0,
        )
        tiny_spec.run()  # must not raise

    def test_nonfinite_p2p_occupancy_is_caught(self, tiny_spec, monkeypatch):
        monkeypatch.setattr(
            CollectiveCostModel,
            "p2p_nic_occupancy",
            lambda self, *args, **kwargs: float("nan"),
        )
        with pytest.raises(InvariantViolation) as exc_info:
            tiny_spec.run(validation=ValidationHooks())
        assert exc_info.value.invariant == "causality.duration_sane"
        assert exc_info.value.context["what"] == "p2p_occupancy"


class TestByteConservation:
    def test_tampered_executor_chunks_are_caught(self, tiny_spec, monkeypatch):
        """An executor that sends half-sized ring chunks breaks the
        telescoped closed form and must be flagged per member."""
        original = CollectiveExecutor._ring_phase

        def tampered(self, ring, rank, chunk, messages, tag, phase):
            return original(self, ring, rank, chunk * 0.5, messages, tag, phase)

        monkeypatch.setattr(CollectiveExecutor, "_ring_phase", tampered)
        with pytest.raises(InvariantViolation) as exc_info:
            tiny_spec.run(validation=ValidationHooks())
        violation = exc_info.value
        assert violation.invariant == "collective.byte_conservation"
        assert violation.context["sent"] < violation.context["expected"]

    def test_tag_reuse_with_different_payload_is_caught(self):
        hooks = ValidationHooks()
        hooks.begin_collective("t", "allreduce", 0, [0, 1], 1024.0, [0, 0])
        with pytest.raises(InvariantViolation) as exc_info:
            hooks.begin_collective("t", "allreduce", 1, [0, 1], 2048.0, [0, 0])
        assert exc_info.value.invariant == "collective.group_consistent"

    def test_member_ledger_settles_group(self):
        hooks = ValidationHooks()
        ring, nodes = [0, 1], [0, 1]
        for rank in ring:
            hooks.begin_collective("t", "allreduce", rank, ring, 1000.0, nodes)
        for rank in ring:
            # ring all-reduce over two members: one rs + one ag step of n/2
            hooks.on_collective_step("t", rank, 500.0)
            hooks.on_collective_step("t", rank, 500.0)
            hooks.end_collective_member("t", rank, 0.0, 1.0)
        assert hooks.total_violations == 0
        assert "t" not in hooks._collectives  # ledger closed


class TestResourceInvariants:
    def test_overlapping_exclusive_grants_are_caught(self):
        hooks = ValidationHooks()
        engine = SimEngine(hooks=hooks)
        nic = Resource(engine, capacity=1, name="nic")
        nic.acquire()
        # corrupt the bookkeeping the way a buggy primitive would
        nic._in_use = 0
        with pytest.raises(InvariantViolation) as exc_info:
            nic.acquire()
        assert exc_info.value.invariant == "resource.capacity"
        assert exc_info.value.context["name"] == "nic"

    def test_release_handoff_keeps_net_grants_balanced(self):
        hooks = ValidationHooks()
        engine = SimEngine(hooks=hooks)
        nic = Resource(engine, capacity=1, name="nic")
        nic.acquire()
        waiter = nic.acquire()  # queued
        nic.release()  # hands the slot to the waiter
        assert waiter.triggered
        nic.release()
        assert hooks.total_violations == 0

    def test_double_release_is_caught(self):
        hooks = ValidationHooks()
        engine = SimEngine(hooks=hooks)
        nic = Resource(engine, capacity=2, name="nic")
        nic.acquire()
        nic.release()
        # keep the Resource's own guard out of the way: fake a stale count
        nic._in_use = 1
        with pytest.raises(InvariantViolation) as exc_info:
            nic.release()
        assert exc_info.value.invariant == "resource.release_balanced"


class TestSpanInvariants:
    def test_inverted_span_raises_structured_error(self):
        trace = TraceRecorder(hooks=ValidationHooks())
        with pytest.raises(InvariantViolation) as exc_info:
            trace.record(0, "compute", "forward", 2.0, 1.0)
        assert exc_info.value.invariant == "trace.span_wellformed"

    def test_negative_bytes_raise(self):
        trace = TraceRecorder(hooks=ValidationHooks())
        with pytest.raises(InvariantViolation):
            trace.record(0, "p2p", "send:x", 0.0, 1.0, nbytes=-5)

    def test_finalize_rejects_overlapping_compute(self):
        hooks = ValidationHooks()
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 2.0)
        trace.record(0, "compute", "backward", 1.0, 3.0)
        with pytest.raises(InvariantViolation) as exc_info:
            hooks.finalize(trace, makespan=3.0, world_size=1)
        assert exc_info.value.invariant == "trace.compute_exclusive"

    def test_finalize_rejects_unnested_nic_span(self):
        hooks = ValidationHooks()
        trace = TraceRecorder()
        trace.record(0, "p2p", "send:a", 0.0, 1.0)
        trace.record(0, "nic", "nic-tx:a", 0.5, 1.5)  # pokes out of the send
        with pytest.raises(InvariantViolation) as exc_info:
            hooks.finalize(trace, makespan=2.0, world_size=1)
        assert exc_info.value.invariant == "trace.nic_nested_in_send"

    def test_finalize_rejects_alien_rank(self):
        hooks = ValidationHooks()
        trace = TraceRecorder()
        trace.record(7, "compute", "forward", 0.0, 1.0)
        with pytest.raises(InvariantViolation) as exc_info:
            hooks.finalize(trace, makespan=1.0, world_size=4)
        assert exc_info.value.invariant == "trace.rank_consistent"

    def test_finalize_accepts_clean_trace(self):
        hooks = ValidationHooks()
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        trace.record(0, "compute", "backward", 1.0, 2.0)
        trace.record(0, "p2p", "send:a", 2.0, 3.0)
        trace.record(0, "nic", "nic-tx:a", 2.2, 2.8)
        trace.record(-1, "fault", "inject:nic_flap", 0.5, 0.5)
        hooks.finalize(trace, makespan=3.0, world_size=2)
        assert hooks.total_violations == 0


class TestEngineCausality:
    def test_monotonic_dispatch_passes(self):
        hooks = ValidationHooks()
        engine = SimEngine(hooks=hooks)

        def proc():
            yield engine.timeout_event(0.5)
            yield engine.timeout_event(0.5)

        engine.run_process(proc())
        assert hooks.total_violations == 0
        assert hooks.checks["causality.time_monotonic"] > 0

    def test_backwards_dispatch_is_caught(self):
        hooks = ValidationHooks()
        with pytest.raises(InvariantViolation) as exc_info:
            hooks.on_engine_step(when=1.0, now=2.0)
        assert exc_info.value.invariant == "causality.time_monotonic"
        assert exc_info.value.context == {"when": 1.0, "now": 2.0}

    def test_violation_message_carries_context(self):
        err = InvariantViolation("x.y", "broke", rank=3, tag="dp0")
        assert "[x.y]" in str(err)
        assert "rank=3" in str(err)
        assert "tag='dp0'" in str(err)
        assert err.context == {"rank": 3, "tag": "dp0"}
