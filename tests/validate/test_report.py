"""The ``repro.validate.report/v1`` payload: build, gate, render."""

import pytest

from repro.validate import ValidationHooks
from repro.validate.metamorphic import run_validation
from repro.validate.report import (
    VALIDATION_SCHEMA,
    build_validation_report,
    render_validation_report,
    validate_validation_report,
)


@pytest.fixture(scope="module")
def report():
    results = run_validation(2, seed=0, relations=["seed_replay"])
    return build_validation_report(results, num_scenarios=2, seed=0)


class TestBuild:
    def test_schema_tag_and_tallies(self, report):
        assert report["schema"] == VALIDATION_SCHEMA
        assert report["seed"] == 0
        assert report["num_scenarios"] == 2
        summary = report["summary"]
        assert summary["checks"] == len(report["results"])
        assert summary["passed"] + summary["failed"] == summary["checks"]

    def test_round_trips_through_gate(self, report):
        validate_validation_report(report)  # must not raise

    def test_json_serialisable(self, report):
        import json

        parsed = json.loads(json.dumps(report))
        validate_validation_report(parsed)

    def test_sanitizer_tallies_included_when_given(self):
        hooks = ValidationHooks()
        hooks._check("causality.time_monotonic")
        results = run_validation(1, seed=0, relations=["seed_replay"])
        report = build_validation_report(
            results, num_scenarios=1, seed=0, sanitizer=hooks.summary()
        )
        assert report["sanitizer"]["checks"] == 1
        assert report["sanitizer"]["violations"] == 0
        validate_validation_report(report)


class TestGateRejectsTampering:
    def test_wrong_schema_tag(self, report):
        bad = dict(report, schema="repro.validate.report/v0")
        with pytest.raises(ValueError):
            validate_validation_report(bad)

    def test_missing_results(self, report):
        bad = {k: v for k, v in report.items() if k != "results"}
        with pytest.raises(ValueError):
            validate_validation_report(bad)

    def test_inconsistent_summary(self, report):
        bad = dict(report, summary=dict(report["summary"], passed=999))
        with pytest.raises(ValueError):
            validate_validation_report(bad)

    def test_malformed_result_row(self, report):
        bad = dict(report, results=[{"relation": "x"}])
        with pytest.raises(ValueError):
            validate_validation_report(bad)

    def test_non_integer_seed(self, report):
        bad = dict(report, seed="zero")
        with pytest.raises(ValueError):
            validate_validation_report(bad)


class TestRender:
    def test_render_mentions_outcome(self, report):
        out = render_validation_report(report)
        assert "seed" in out
        assert "passed" in out
        assert "all relations hold" in out

    def test_render_lists_failures(self, report):
        failing = dict(
            report,
            results=report["results"]
            + [
                {
                    "relation": "seed_replay",
                    "scenario": "broken",
                    "passed": False,
                    "details": {},
                    "error": "boom",
                }
            ],
        )
        failing["summary"] = {
            "checks": len(failing["results"]),
            "passed": len(report["results"]),
            "failed": 1,
        }
        out = render_validation_report(failing)
        assert "FAIL" in out and "broken" in out and "boom" in out
