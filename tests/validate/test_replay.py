"""Seed-determinism regression: replays are byte-identical, seeds matter.

Acceptance criterion for the replay differ: at least one faulted and one
fault-free scenario must rerun byte-identically in CI, and a run under a
*different* fault seed must visibly diverge.
"""

import dataclasses

from repro.simcore.trace import TraceRecorder
from repro.validate.replay import (
    compare_traces,
    diff_runs,
    fingerprint,
    metrics_digest,
    span_token,
    trace_digest,
)


class TestDigests:
    def test_trace_digest_is_order_sensitive(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(0, "compute", "forward", 0.0, 1.0)
        a.record(1, "compute", "forward", 0.0, 1.0)
        b.record(1, "compute", "forward", 0.0, 1.0)
        b.record(0, "compute", "forward", 0.0, 1.0)
        assert trace_digest(a) != trace_digest(b)

    def test_span_token_is_exact_on_floats(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(0, "compute", "f", 0.1 + 0.2, 1.0)
        b.record(0, "compute", "f", 0.3, 1.0)
        # 0.1 + 0.2 != 0.3 in binary floats; the token must not blur that
        assert span_token(a.spans[0]) != span_token(b.spans[0])

    def test_meta_participates_in_token(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(0, "p2p", "send:x", 0.0, 1.0, dst=1)
        b.record(0, "p2p", "send:x", 0.0, 1.0, dst=2)
        assert span_token(a.spans[0]) != span_token(b.spans[0])

    def test_compare_traces_reports_first_divergence(self):
        a, b = TraceRecorder(), TraceRecorder()
        for t in (a, b):
            t.record(0, "compute", "forward", 0.0, 1.0)
        a.record(0, "compute", "backward", 1.0, 2.0)
        b.record(0, "compute", "backward", 1.0, 2.5)
        index, tok_a, tok_b = compare_traces(a, b)
        assert index == 1
        assert tok_a != tok_b

    def test_compare_traces_flags_truncation(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(0, "compute", "forward", 0.0, 1.0)
        a.record(0, "compute", "backward", 1.0, 2.0)
        b.record(0, "compute", "forward", 0.0, 1.0)
        index, tok_a, tok_b = compare_traces(a, b)
        assert index == 1
        assert tok_a is not None and tok_b is None


class TestSeedDeterminism:
    def test_fault_free_replay_is_byte_identical(self, tiny_spec):
        report = diff_runs(tiny_spec.run)
        assert report.identical, report.describe()
        assert report.first == report.second
        assert report.divergence_index is None

    def test_faulted_replay_is_byte_identical(self, faulted_spec):
        """Same FaultPlan.random seed twice -> identical trace digests and
        IterationMetrics."""
        report = diff_runs(faulted_spec.run)
        assert report.identical, report.describe()
        assert report.first.trace == report.second.trace
        assert report.first.metrics == report.second.metrics

    def test_metrics_are_reproducible_field_by_field(self, faulted_spec):
        a = faulted_spec.run()
        b = faulted_spec.run()
        assert a.metrics == b.metrics
        assert metrics_digest(a.metrics) == metrics_digest(b.metrics)

    def test_different_fault_seed_diverges(self, faulted_spec):
        """A third run under a different seed must not fingerprint-match."""
        other = dataclasses.replace(faulted_spec, fault_seed=12)
        fp_a = fingerprint(faulted_spec.run())
        fp_b = fingerprint(other.run())
        assert fp_a.trace != fp_b.trace

    def test_diff_runs_reports_divergence_of_unequal_scenarios(
        self, faulted_spec
    ):
        """Alternate between two seeds inside the factory: the differ must
        localise the first divergent span rather than just say 'differs'."""
        other = dataclasses.replace(faulted_spec, fault_seed=12)
        sequence = [faulted_spec, other]

        def alternating():
            return sequence.pop(0).run()

        report = diff_runs(alternating)
        assert not report.identical
        assert report.divergence_index is not None
        assert "diverged" in report.describe()

    def test_fingerprint_carries_span_count_and_makespan(self, tiny_spec):
        result = tiny_spec.run()
        fp = fingerprint(result)
        assert fp.num_spans == len(result.trace.spans)
        assert fp.makespan == result.makespan
