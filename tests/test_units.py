"""Tests for unit conversion helpers (unit bugs are the classic simulator
failure mode, so these are pinned exactly)."""

import pytest

from repro import units


class TestConversions:
    def test_gbps_is_bytes_per_second(self):
        # 200 Gb/s = 25 GB/s.
        assert units.gbps(200) == pytest.approx(25e9)

    def test_gBps(self):
        assert units.gBps(250) == pytest.approx(250e9)

    def test_teraflops_round_trip(self):
        assert units.to_teraflops(units.teraflops(312)) == pytest.approx(312)

    def test_microseconds(self):
        assert units.microseconds(30) == pytest.approx(30e-6)

    def test_mib(self):
        assert units.mib(1) == 1024**2

    def test_byte_constants(self):
        assert units.KB == 1024
        assert units.MB == 1024**2
        assert units.GB == 1024**3
        assert units.BITS_PER_BYTE == 8

    def test_table1_bandwidths(self):
        """The paper's Table 1 column: 200/200/25 Gb/s."""
        from repro.hardware.presets import ETH_25, IB_200, ROCE_200

        assert IB_200.bandwidth == units.gbps(200)
        assert ROCE_200.bandwidth == units.gbps(200)
        assert ETH_25.bandwidth == units.gbps(25)
