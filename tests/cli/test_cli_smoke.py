"""End-to-end CLI smoke tests: ``python -m repro`` on tiny presets.

Each subcommand is invoked in a real subprocess (fresh interpreter, the
same entry point users hit), must exit 0, and any ``--out`` JSON artifact
must pass the corresponding schema gate.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.obs.report import validate_report
from repro.validate.report import VALIDATION_SCHEMA, validate_validation_report

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(*argv, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


class TestFaults:
    def test_random_fault_sweep_exits_zero(self):
        proc = run_cli(
            "faults", "--nodes", "2", "--group", "1",
            "--random", "2", "--seed", "3",
        )
        assert proc.returncode == 0, proc.stderr
        assert "slowdown:" in proc.stdout

    def test_no_faults_is_a_usage_error(self):
        proc = run_cli("faults", "--nodes", "2", "--group", "1")
        assert proc.returncode != 0
        assert "no faults given" in proc.stderr


class TestProfile:
    def test_report_artifact_schema_validates(self, tmp_path):
        out = tmp_path / "profile.json"
        proc = run_cli(
            "profile", "--nodes", "2", "--group", "1", "--out", str(out)
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        validate_report(report)  # must not raise
        assert report["scenario"]["nodes"] == 2


class TestValidate:
    def test_sweep_exits_zero_and_artifact_validates(self, tmp_path):
        out = tmp_path / "validate.json"
        proc = run_cli(
            "validate", "--scenarios", "2", "--seed", "0",
            "--relation", "seed_replay", "--out", str(out),
        )
        assert proc.returncode == 0, proc.stderr
        assert "all relations hold" in proc.stdout
        report = json.loads(out.read_text())
        validate_validation_report(report)  # must not raise
        assert report["schema"] == VALIDATION_SCHEMA
        assert report["sanitizer"]["violations"] == 0

    def test_unknown_relation_is_rejected(self):
        proc = run_cli(
            "validate", "--scenarios", "1", "--relation", "no_such_relation"
        )
        assert proc.returncode != 0


@pytest.mark.slow
class TestValidateFullRegistry:
    def test_default_relation_set(self, tmp_path):
        out = tmp_path / "validate_full.json"
        proc = run_cli(
            "validate", "--scenarios", "3", "--seed", "0", "--out", str(out),
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert len(report["relations"]) == 6
