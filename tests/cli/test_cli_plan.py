"""Contract tests for the ``repro plan`` CLI subcommand."""

import json
import os
import subprocess
import sys

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(*argv, timeout=300, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, timeout=timeout, env=env, cwd=cwd,
    )


TINY_PLAN_ARGS = (
    "plan", "--env", "hybrid", "--nodes", "2", "--gpus-per-node", "2",
    "--layers", "4", "--hidden", "256", "--heads", "4",
    "--seq-length", "512", "--batch", "16", "--micro-batch", "1",
    "--budget", "6", "--top-k", "2",
)


def test_help_lists_plan_subcommand():
    proc = run_cli("--help")
    assert proc.returncode == 0
    assert "plan" in proc.stdout
    assert "NIC-aware layout search" in proc.stdout


def test_plan_has_its_own_help():
    proc = run_cli("plan", "--help")
    assert proc.returncode == 0
    for flag in ("--budget", "--top-k", "--fidelity", "--out", "--jobs",
                 "--cache", "--resume", "--env", "--group"):
        assert flag in proc.stdout, flag


def test_plan_runs_and_emits_schema_valid_report(tmp_path):
    out = tmp_path / "plan.json"
    proc = run_cli(*TINY_PLAN_ARGS, "--out", str(out), cwd=str(tmp_path))
    assert proc.returncode == 0, proc.stderr
    assert "discovered" in proc.stdout or "TFLOPS" in proc.stdout

    report = json.loads(out.read_text())
    assert report["schema"] == "repro.plan.report/v1"

    sys.path.insert(0, os.path.abspath(REPO_SRC))
    try:
        from repro.plan import validate_plan_report

        validate_plan_report(report)
    finally:
        sys.path.pop(0)

    assert report["gate"]["beats_presets"] is True
    assert report["ranking"][0] == dict(report["best"], rank=1)
    assert report["space"]["budget"] == 6
    assert report["space"]["top_k"] == 2


def test_plan_respects_jobs_and_fidelity_flags(tmp_path):
    # explicit --fidelity auto (the default) plus a parallel worker pool;
    # strict "analytic" is rejected at runtime on contended hybrid links,
    # which is the tier contract, not a CLI concern
    proc = run_cli(
        *TINY_PLAN_ARGS, "-j", "2", "--fidelity", "auto",
        cwd=str(tmp_path),
    )
    assert proc.returncode == 0, proc.stderr


def test_plan_rejects_bogus_fidelity_with_hint(tmp_path):
    proc = run_cli(*TINY_PLAN_ARGS, "--fidelity", "excuted", cwd=str(tmp_path))
    assert proc.returncode == 2
    assert "executed" in proc.stderr  # difflib close-match hint


def test_plan_rejects_unbuildable_scenario(tmp_path):
    proc = run_cli(
        "plan", "--env", "hybrid", "--nodes", "3", "--gpus-per-node", "2",
        "--layers", "4", "--hidden", "256", "--heads", "4",
        "--batch", "16", "--micro-batch", "1",
        cwd=str(tmp_path),
    )
    # hybrid needs two equal cluster halves; 3 nodes cannot split
    assert proc.returncode != 0
    assert proc.stderr.strip()
