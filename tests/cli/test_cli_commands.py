"""CLI contract tests: help enumeration, unknown-command hints, bench."""

import json
import os
import subprocess
import sys

from repro.cli import COMMANDS

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(*argv, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_help_enumerates_every_command():
    proc = run_cli("--help")
    assert proc.returncode == 0
    for name, description in COMMANDS.items():
        assert name in proc.stdout
        assert description in proc.stdout


def test_every_command_has_its_own_help():
    for name in COMMANDS:
        proc = run_cli(name, "--help")
        assert proc.returncode == 0, (name, proc.stderr)
        assert f"repro {name}" in proc.stdout


def test_unknown_command_exits_2_with_hint():
    proc = run_cli("benhc")
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert "unknown command 'benhc'" in proc.stderr
    assert "bench" in proc.stderr  # the close-match hint
    assert "--help" in proc.stderr


def test_unknown_command_without_close_match_still_hints_help():
    proc = run_cli("zzzzzz")
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert "--help" in proc.stderr


def test_bench_micro_only_writes_gateable_document(tmp_path):
    out = tmp_path / "bench.json"
    proc = run_cli("bench", "--micro-only", "--repeats", "1",
                   "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench/v1"
    assert "calibration" in doc["microbench"]["benchmarks"]

    # the gate passes against the document it just wrote; the huge
    # tolerance keeps this a plumbing test, immune to timing noise on
    # loaded CI runners
    check = run_cli("bench", "--micro-only", "--repeats", "1",
                    "--check", str(out), "--tolerance", "25.0")
    assert check.returncode == 0, check.stderr
    assert "pass" in check.stdout


def test_unknown_fidelity_exits_2_with_close_match_hint():
    proc = run_cli("simulate", "--env", "ib", "--fidelity", "anaytic")
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert "unknown fidelity 'anaytic'" in proc.stderr
    assert "'analytic'" in proc.stderr  # the close-match hint
    assert "executed, analytic, auto" in proc.stderr


def test_analytic_on_contended_scenario_exits_1_with_reasons():
    # multi-GPU nodes share NICs, so the pure-analytic tier must refuse
    # with the fallback reasons on one line, not a traceback
    proc = run_cli("simulate", "--env", "ib", "--nodes", "2",
                   "--fidelity", "analytic")
    assert proc.returncode == 1
    assert "Traceback" not in proc.stderr
    assert "cannot price this scenario" in proc.stderr
    assert "use fidelity='auto'" in proc.stderr


def test_cache_stats_and_prune(tmp_path):
    journal_dir = tmp_path / "journal"
    journal_dir.mkdir(parents=True)
    (journal_dir / "abcd.jsonl").write_text('{"x": 1}\n')
    proc = run_cli("cache", "--dir", str(tmp_path), "--json")
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)
    assert stats["entries"] == 0
    assert stats["journal_files"] == 1

    # --journals without --prune is a user error, not a silent no-op
    bad = run_cli("cache", "--dir", str(tmp_path), "--journals")
    assert bad.returncode != 0

    proc = run_cli("cache", "--dir", str(tmp_path), "--prune", "--ttl", "0",
                   "--journals", "--json")
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)
    assert stats["pruned"] == 1
    assert stats["journal_files"] == 0


def test_runs_empty_ledger(tmp_path):
    proc = run_cli("runs", "--ledger", str(tmp_path / "none.jsonl"))
    assert proc.returncode == 0, proc.stderr
    assert "no recorded runs" in proc.stdout


def test_runs_lists_ledger_records(tmp_path):
    ledger = tmp_path / "ledger.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    script = (
        "from repro.obs.ledger import record_run\n"
        f"record_run('sweep', started='2026-08-08T01:00:00',"
        f" wall_seconds=1.25, outcome='ok',"
        f" counts={{'executed': 4}}, ledger={str(ledger)!r})\n"
        f"record_run('bench', started='2026-08-08T02:00:00',"
        f" wall_seconds=2.5, outcome='partial',"
        f" counts={{'executed': 8, 'quarantined': 1}},"
        f" ledger={str(ledger)!r})\n"
    )
    subprocess.run([sys.executable, "-c", script], check=True, env=env)

    proc = run_cli("runs", "--ledger", str(ledger))
    assert proc.returncode == 0, proc.stderr
    assert "sweep" in proc.stdout
    assert "bench" in proc.stdout
    assert "partial" in proc.stdout

    as_json = run_cli("runs", "--ledger", str(ledger), "--json")
    records = json.loads(as_json.stdout)
    assert [r["kind"] for r in records] == ["sweep", "bench"]
    assert records[0]["schema"] == "repro.obs.ledger/v1"

    last = run_cli("runs", "--ledger", str(ledger), "--last", "1")
    assert "bench" in last.stdout
    assert "2026-08-08T01:00:00" not in last.stdout


def test_report_trend_over_committed_results():
    proc = run_cli("report", "--trend")
    assert proc.returncode == 0, proc.stderr
    assert "series" in proc.stdout
    assert "sweep.normalized_cell_cost" in proc.stdout


def test_report_strict_gates_on_synthetic_regression(tmp_path):
    def doc(date, cost):
        return {
            "schema": "repro.bench/v1",
            "date": date,
            "sweep": {"normalized_cell_cost": cost},
            "microbench": {"benchmarks": {}},
        }

    (tmp_path / "BENCH_2026-08-01.json").write_text(
        json.dumps(doc("2026-08-01", 100.0)))
    (tmp_path / "BENCH_2026-08-02.json").write_text(
        json.dumps(doc("2026-08-02", 200.0)))

    soft = run_cli("report", "--trend", "--results", str(tmp_path))
    assert soft.returncode == 0, soft.stderr
    assert "regress" in soft.stderr

    strict = run_cli("report", "--trend", "--results", str(tmp_path),
                     "--strict")
    assert strict.returncode == 1

    # within tolerance the strict gate passes
    (tmp_path / "BENCH_2026-08-03.json").write_text(
        json.dumps(doc("2026-08-03", 205.0)))
    ok = run_cli("report", "--trend", "--results", str(tmp_path),
                 "--strict")
    assert ok.returncode == 0, ok.stderr
    assert "trend gate: pass" in ok.stdout
