"""CLI contract tests: help enumeration, unknown-command hints, bench."""

import json
import os
import subprocess
import sys

from repro.cli import COMMANDS

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def run_cli(*argv, timeout=180):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def test_help_enumerates_every_command():
    proc = run_cli("--help")
    assert proc.returncode == 0
    for name, description in COMMANDS.items():
        assert name in proc.stdout
        assert description in proc.stdout


def test_every_command_has_its_own_help():
    for name in COMMANDS:
        proc = run_cli(name, "--help")
        assert proc.returncode == 0, (name, proc.stderr)
        assert f"repro {name}" in proc.stdout


def test_unknown_command_exits_2_with_hint():
    proc = run_cli("benhc")
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert "unknown command 'benhc'" in proc.stderr
    assert "bench" in proc.stderr  # the close-match hint
    assert "--help" in proc.stderr


def test_unknown_command_without_close_match_still_hints_help():
    proc = run_cli("zzzzzz")
    assert proc.returncode == 2
    assert "Traceback" not in proc.stderr
    assert "--help" in proc.stderr


def test_bench_micro_only_writes_gateable_document(tmp_path):
    out = tmp_path / "bench.json"
    proc = run_cli("bench", "--micro-only", "--repeats", "1",
                   "--out", str(out))
    assert proc.returncode == 0, proc.stderr
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench/v1"
    assert "calibration" in doc["microbench"]["benchmarks"]

    # the gate passes against the document it just wrote; the huge
    # tolerance keeps this a plumbing test, immune to timing noise on
    # loaded CI runners
    check = run_cli("bench", "--micro-only", "--repeats", "1",
                    "--check", str(out), "--tolerance", "25.0")
    assert check.returncode == 0, check.stderr
    assert "pass" in check.stdout
