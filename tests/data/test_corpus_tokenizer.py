"""Tests for the synthetic corpus and tokenizers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.corpus import SyntheticCorpus
from repro.data.tokenizer import BPETokenizer, CharTokenizer
from repro.errors import ConfigurationError


class TestSyntheticCorpus:
    def test_deterministic_by_seed(self):
        a = SyntheticCorpus(seed=1).generate(100, seed=5)
        b = SyntheticCorpus(seed=1).generate(100, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = SyntheticCorpus(seed=1).generate(100, seed=5)
        b = SyntheticCorpus(seed=2).generate(100, seed=5)
        assert a != b

    def test_word_count(self):
        text = SyntheticCorpus().generate(250)
        assert len(text.split()) == 250

    def test_words_come_from_vocabulary(self):
        corpus = SyntheticCorpus(vocab_words=20)
        vocab = set(corpus.words)
        assert set(corpus.generate(500).split()) <= vocab

    def test_frequencies_are_skewed(self):
        """Zipfian unigram + Markov structure: the most common word must
        clearly dominate the median word."""
        from collections import Counter

        counts = Counter(SyntheticCorpus().generate(5000).split())
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 3 * frequencies[len(frequencies) // 2]

    def test_invalid_args_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticCorpus(vocab_words=1)
        with pytest.raises(ConfigurationError):
            SyntheticCorpus().generate(0)


class TestCharTokenizer:
    def test_round_trip(self):
        text = "hello world"
        tok = CharTokenizer(text)
        assert tok.decode(tok.encode(text)) == text

    def test_unknown_char_rejected(self):
        tok = CharTokenizer("ab")
        with pytest.raises(ConfigurationError):
            tok.encode("abc")

    def test_empty_text_rejected(self):
        with pytest.raises(ConfigurationError):
            CharTokenizer("")


class TestBPETokenizer:
    @pytest.fixture
    def corpus_text(self):
        return SyntheticCorpus(vocab_words=30, seed=3).generate(2000)

    def test_round_trip(self, corpus_text):
        tok = BPETokenizer().train(corpus_text, vocab_size=100)
        sample = " ".join(corpus_text.split()[:50])
        assert tok.decode(tok.encode(sample)) == sample

    def test_vocab_size_respected(self, corpus_text):
        tok = BPETokenizer().train(corpus_text, vocab_size=80)
        assert tok.vocab_size <= 80

    def test_merges_compress(self, corpus_text):
        """More merges -> fewer tokens per text."""
        small = BPETokenizer().train(corpus_text, vocab_size=30)
        large = BPETokenizer().train(corpus_text, vocab_size=200)
        sample = " ".join(corpus_text.split()[:100])
        assert len(large.encode(sample)) < len(small.encode(sample))

    def test_frequent_words_become_single_tokens(self, corpus_text):
        from collections import Counter

        tok = BPETokenizer().train(corpus_text, vocab_size=300)
        top_word = Counter(corpus_text.split()).most_common(1)[0][0]
        pieces = tok.tokenize(top_word)
        assert len(pieces) == 1

    def test_untrained_tokenizer_rejected(self):
        with pytest.raises(ConfigurationError):
            BPETokenizer().encode("x")

    def test_out_of_vocabulary_piece_rejected(self, corpus_text):
        tok = BPETokenizer().train(corpus_text, vocab_size=60)
        with pytest.raises(ConfigurationError):
            tok.encode("qqqq")  # 'q' never appears in the syllable alphabet

    def test_invalid_training_args(self):
        with pytest.raises(ConfigurationError):
            BPETokenizer().train("", 10)
        with pytest.raises(ConfigurationError):
            BPETokenizer().train("ab ab", 1)

    @given(vocab=st.integers(20, 120), words=st.integers(50, 300))
    @settings(max_examples=10, deadline=None)
    def test_property_round_trip(self, vocab, words):
        text = SyntheticCorpus(vocab_words=15, seed=vocab).generate(words)
        tok = BPETokenizer().train(text, vocab_size=vocab)
        assert tok.decode(tok.encode(text)) == text
