"""Tests for the token dataset and DP sampler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.dataset import DataParallelSampler, TokenDataset
from repro.errors import ConfigurationError


@pytest.fixture
def dataset():
    return TokenDataset(np.arange(101), seq_length=10)  # 10 samples


class TestTokenDataset:
    def test_sample_count(self, dataset):
        assert len(dataset) == 10

    def test_target_is_shifted_input(self, dataset):
        inputs, targets = dataset.sample(0)
        np.testing.assert_array_equal(targets, inputs + 1)
        assert inputs.shape == (10,)

    def test_samples_tile_the_stream(self, dataset):
        inputs0, _ = dataset.sample(0)
        inputs1, _ = dataset.sample(1)
        assert inputs1[0] == inputs0[-1] + 1

    def test_batch_stacks(self, dataset):
        inputs, targets = dataset.batch([0, 3, 5])
        assert inputs.shape == (3, 10)
        assert targets.shape == (3, 10)

    def test_out_of_range_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            dataset.sample(10)

    def test_too_short_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenDataset(np.arange(5), seq_length=10)

    def test_invalid_seq_length_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenDataset(np.arange(100), seq_length=0)


class TestDataParallelSampler:
    @pytest.fixture
    def sampler(self, dataset):
        return DataParallelSampler(dataset, data_parallel=2,
                                   batch_per_replica=2, seed=1)

    def test_batches_per_epoch(self, sampler):
        assert sampler.batches_per_epoch == 2  # 10 // (2*2) = 2

    def test_each_sample_once_per_epoch(self, sampler):
        consumed = sampler.epoch_coverage(epoch=0)
        assert len(consumed) == len(set(consumed))
        assert len(consumed) == 8  # 2 steps x 2 replicas x 2 samples

    def test_replicas_disjoint_within_step(self, sampler):
        a = set(sampler.replica_indices(0, epoch=0, step=0))
        b = set(sampler.replica_indices(1, epoch=0, step=0))
        assert not (a & b)

    def test_deterministic_per_epoch(self, sampler):
        assert sampler.replica_indices(0, 3, 1) == sampler.replica_indices(0, 3, 1)

    def test_epochs_shuffle_differently(self, sampler):
        assert sampler.epoch_coverage(0) != sampler.epoch_coverage(1)

    def test_replica_batch_shapes(self, sampler):
        inputs, targets = sampler.replica_batch(1, epoch=0, step=1)
        assert inputs.shape == (2, 10)
        assert targets.shape == (2, 10)

    def test_invalid_queries_rejected(self, sampler):
        with pytest.raises(ConfigurationError):
            sampler.replica_indices(2, 0, 0)
        with pytest.raises(ConfigurationError):
            sampler.replica_indices(0, 0, 2)

    def test_oversized_configuration_rejected(self, dataset):
        with pytest.raises(ConfigurationError):
            DataParallelSampler(dataset, data_parallel=4, batch_per_replica=4)

    @given(
        d=st.integers(1, 4),
        b=st.integers(1, 3),
        epoch=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_epoch_is_partition(self, d, b, epoch):
        dataset = TokenDataset(np.arange(1 + 8 * d * b * 4), seq_length=8)
        sampler = DataParallelSampler(dataset, d, b, seed=9)
        consumed = sampler.epoch_coverage(epoch)
        assert len(consumed) == len(set(consumed))
        assert len(consumed) == sampler.batches_per_epoch * d * b
        assert all(0 <= i < len(dataset) for i in consumed)
