"""Tests for table formatting, the case runner, and paper data integrity."""

import pytest

from repro.bench.paper_data import TABLE1, TABLE3, TABLE5, shapes_hold
from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import HOLMES_BASE, HOLMES_FULL, run_holmes_case
from repro.bench.scenarios import homogeneous_env
from repro.bench.tables import format_table, paper_vs_measured
from repro.hardware.nic import NICType


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["env", "TFLOPS"], [["InfiniBand", 197.0], ["RoCE", 160.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "197.00" in text

    def test_format_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_paper_vs_measured_delta(self):
        line = paper_vs_measured("x", 100.0, 90.0)
        assert "-10.0%" in line

    def test_paper_vs_measured_zero_paper(self):
        assert "inf" in paper_vs_measured("x", 0.0, 1.0)


class TestPaperData:
    def test_table3_has_48_cells(self):
        assert len(TABLE3) == 48

    def test_table1_matches_table3_4node_rows(self):
        for env, (tflops, thr) in TABLE1.items():
            assert TABLE3[(1, 4, env)] == (tflops, thr)

    def test_table5_ablation_ordering(self):
        """The published ablation is internally monotone."""
        assert (
            TABLE5["holmes"][0]
            > TABLE5["holmes-no-sap"][0]
            > TABLE5["holmes-no-overlap"][0]
            > TABLE5["holmes-no-sap-no-overlap"][0]
            > TABLE5["megatron-lm"][0]
        )

    def test_table5_no_both_equals_table3_hybrid(self):
        """The consistency that pins Table 3's Hybrid configuration."""
        assert TABLE5["holmes-no-sap-no-overlap"] == TABLE3[(3, 8, "Hybrid")]

    def test_shapes_hold_helper(self):
        assert all(
            shapes_hold(
                {"InfiniBand": 197, "RoCE": 160, "Ethernet": 122, "Hybrid": 149}
            ).values()
        )
        bad = shapes_hold(
            {"InfiniBand": 100, "RoCE": 160, "Ethernet": 122, "Hybrid": 90}
        )
        assert not bad["ib_fastest"]


class TestRunner:
    def test_case_result_fields(self):
        result = run_holmes_case(
            homogeneous_env(4, NICType.INFINIBAND), PARAM_GROUPS[1],
            scenario="InfiniBand",
        )
        assert result.scenario == "InfiniBand"
        assert result.group_id == 1
        assert result.num_gpus == 32
        assert result.tflops > 0
        row = result.row()
        assert row["TFLOPS"] == round(result.tflops)

    def test_base_vs_full_presets(self):
        assert HOLMES_BASE.partition_strategy == "uniform"
        assert HOLMES_BASE.optimizer.name == "distributed"
        assert HOLMES_FULL.partition_strategy == "self_adapting"
        assert HOLMES_FULL.optimizer.name == "overlapped"


class TestAsciiBars:
    def test_bars_scale_to_peak(self):
        from repro.bench.tables import ascii_bars

        chart = ascii_bars(["a", "bb"], [1.0, 2.0], width=10, unit="s")
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("█") == 10  # peak fills the width
        assert lines[0].count("█") == 5
        assert "2.00s" in lines[1]

    def test_zero_values(self):
        from repro.bench.tables import ascii_bars

        chart = ascii_bars(["x"], [0.0])
        assert "0.00" in chart

    def test_empty(self):
        from repro.bench.tables import ascii_bars

        assert ascii_bars([], []) == "(no data)"

    def test_mismatched_lengths_rejected(self):
        from repro.bench.tables import ascii_bars

        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
