"""Tests for the Table 2 parameter groups."""

import pytest

from repro.bench.paramgroups import PARAM_GROUPS
from repro.errors import ParallelismError
from repro.model.params import parameter_count


class TestTable2:
    def test_eight_groups(self):
        assert sorted(PARAM_GROUPS) == list(range(1, 9))

    @pytest.mark.parametrize(
        "gid,billions",
        [(1, 3.6), (2, 3.6), (3, 7.5), (4, 7.5), (5, 7.5), (6, 7.5),
         (7, 39.1), (8, 39.1)],
    )
    def test_parameter_counts(self, gid, billions):
        group = PARAM_GROUPS[gid]
        assert parameter_count(group.model) / 1e9 == pytest.approx(
            billions, rel=0.02
        )

    @pytest.mark.parametrize("gid,t,p", [
        (1, 1, 2), (2, 1, 2), (3, 1, 2), (4, 1, 2),
        (5, 1, 3), (6, 1, 3), (7, 8, 2), (8, 8, 3),
    ])
    def test_parallel_degrees(self, gid, t, p):
        group = PARAM_GROUPS[gid]
        assert group.tensor_parallel == t
        assert group.pipeline_parallel == p

    @pytest.mark.parametrize("gid,batch", [
        (1, 768), (2, 1536), (3, 1536), (4, 2688),
        (5, 1536), (6, 2688), (7, 1536), (8, 1536),
    ])
    def test_batch_sizes(self, gid, batch):
        assert PARAM_GROUPS[gid].global_batch_size == batch

    def test_all_use_micro_batch_4(self):
        assert all(g.micro_batch_size == 4 for g in PARAM_GROUPS.values())

    def test_all_use_paper_vocab_and_seq(self):
        for group in PARAM_GROUPS.values():
            assert group.model.vocab_size == 51200
            assert group.model.seq_length == 2048


class TestParallelFor:
    def test_pg1_on_32_gpus(self):
        parallel = PARAM_GROUPS[1].parallel_for(32)
        assert (parallel.tensor, parallel.pipeline, parallel.data) == (1, 2, 16)
        assert parallel.num_microbatches == 12

    def test_pg7_on_64_gpus(self):
        parallel = PARAM_GROUPS[7].parallel_for(64)
        assert (parallel.tensor, parallel.pipeline, parallel.data) == (8, 2, 4)

    def test_indivisible_gpu_count_rejected(self):
        with pytest.raises(ParallelismError):
            PARAM_GROUPS[5].parallel_for(32)  # p=3 does not divide 32

    def test_with_pipeline_override(self):
        group = PARAM_GROUPS[3].with_pipeline(3)
        assert group.pipeline_parallel == 3
        assert group.model is PARAM_GROUPS[3].model
