"""Tests for the NIC environment builders."""

import pytest

from repro.bench.scenarios import (
    ethernet_env,
    homogeneous_env,
    hybrid2_env,
    hybrid3_env,
    split_env,
)
from repro.errors import ConfigurationError
from repro.hardware.nic import NICType


class TestHomogeneous:
    def test_case1_interconnect(self):
        topo = homogeneous_env(4, NICType.INFINIBAND)
        assert topo.inter_cluster_rdma
        assert topo.world_size == 32
        assert all(
            topo.nic_type_of(r) == NICType.INFINIBAND for r in range(32)
        )

    def test_ethernet_env(self):
        topo = ethernet_env(2)
        assert all(topo.nic_type_of(r) == NICType.ETHERNET for r in range(16))


class TestHybrid2:
    def test_roce_cluster_first(self):
        """Matches the paper's environment orderings (Fig. 6, Table 4)."""
        topo = hybrid2_env(4)
        assert topo.clusters[0].nic_type == NICType.ROCE
        assert topo.clusters[1].nic_type == NICType.INFINIBAND
        assert not topo.inter_cluster_rdma

    def test_equal_halves(self):
        topo = hybrid2_env(8)
        assert topo.clusters[0].num_nodes == 4
        assert topo.clusters[1].num_nodes == 4

    def test_odd_count_rejected(self):
        with pytest.raises(ConfigurationError):
            hybrid2_env(5)


class TestHybrid3:
    def test_table4_layout(self):
        topo = hybrid3_env(
            [NICType.ROCE, NICType.ROCE, NICType.INFINIBAND], 2
        )
        assert topo.num_clusters == 3
        assert topo.world_size == 48
        assert [c.nic_type for c in topo.clusters] == [
            NICType.ROCE, NICType.ROCE, NICType.INFINIBAND
        ]

    def test_too_few_clusters_rejected(self):
        with pytest.raises(ConfigurationError):
            hybrid3_env([NICType.ROCE], 2)


class TestSplit:
    def test_same_family_two_clusters(self):
        topo = split_env(4, NICType.INFINIBAND)
        assert topo.num_clusters == 2
        assert all(c.nic_type == NICType.INFINIBAND for c in topo.clusters)
        assert not topo.inter_cluster_rdma

    def test_cross_cluster_is_ethernet(self):
        topo = split_env(4, NICType.ROCE)
        first_c0 = topo.ranks_of_cluster(0)[0]
        first_c1 = topo.ranks_of_cluster(1)[0]
        assert topo.effective_nic_type(first_c0, first_c1) == NICType.ETHERNET

    def test_ethernet_family_rejected(self):
        with pytest.raises(ConfigurationError):
            split_env(4, NICType.ETHERNET)

    def test_odd_count_rejected(self):
        with pytest.raises(ConfigurationError):
            split_env(3, NICType.INFINIBAND)
