"""Tests for the results-report aggregator."""

import pathlib

import pytest

from repro.bench.report import collect_results, render_report, write_report
from repro.errors import ConfigurationError


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "table1_nic_comparison.txt").write_text("IB 192 vs 197\n")
    (tmp_path / "custom_experiment.txt").write_text("extra data\n")
    return str(tmp_path)


class TestReport:
    def test_collect(self, results_dir):
        results = collect_results(results_dir)
        assert set(results) == {"table1_nic_comparison", "custom_experiment"}

    def test_missing_dir_rejected(self):
        with pytest.raises(ConfigurationError):
            collect_results("/nonexistent/results")

    def test_render_orders_known_sections_first(self, results_dir):
        text = render_report(collect_results(results_dir))
        assert text.index("Table 1") < text.index("custom_experiment")
        assert "IB 192 vs 197" in text
        assert "## Contents" in text

    def test_render_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            render_report({})

    def test_write_report(self, results_dir):
        path = write_report(results_dir)
        content = pathlib.Path(path).read_text()
        assert content.startswith("# Regenerated evaluation report")

    def test_write_report_custom_output(self, results_dir, tmp_path):
        out = str(tmp_path / "out.md")
        assert write_report(results_dir, output=out) == out
        assert pathlib.Path(out).exists()
