"""Tests for the sweep utility."""

import pytest

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import HOLMES_BASE
from repro.bench.scenarios import homogeneous_env
from repro.bench.sweep import (
    node_scaling_points,
    scaling_efficiency,
    sweep_machines,
)
from repro.errors import ConfigurationError
from repro.hardware.nic import NICType


class TestSweep:
    def test_node_scaling_points(self):
        points = node_scaling_points(
            lambda n: homogeneous_env(n, NICType.INFINIBAND), [2, 4]
        )
        assert [p.label for p in points] == ["2 nodes", "4 nodes"]
        assert points[1].topology.world_size == 32

    def test_sweep_runs_all_points(self):
        points = node_scaling_points(
            lambda n: homogeneous_env(n, NICType.INFINIBAND), [2, 4]
        )
        results = sweep_machines(HOLMES_BASE, points, PARAM_GROUPS[1])
        assert [r.scenario for r in results] == ["2 nodes", "4 nodes"]
        assert results[1].num_gpus == 2 * results[0].num_gpus

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_machines(HOLMES_BASE, [], PARAM_GROUPS[1])
        with pytest.raises(ConfigurationError):
            node_scaling_points(lambda n: None, [])

    def test_scaling_efficiency_first_point_is_one(self):
        points = node_scaling_points(
            lambda n: homogeneous_env(n, NICType.INFINIBAND), [2, 4]
        )
        results = sweep_machines(HOLMES_BASE, points, PARAM_GROUPS[1])
        efficiencies = scaling_efficiency(results)
        assert efficiencies[0] == pytest.approx(1.0)
        # Sublinear at fixed global batch (paper Table 3 shape).
        assert efficiencies[1] < 1.0

    def test_scaling_efficiency_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            scaling_efficiency([])
