"""Re-planning over an unchanged space rides the result cache.

Both planner phases go through :func:`repro.api.sweep`, so every
simulated candidate lands in the content-addressed :class:`ResultCache`.
A second ``repro plan`` over the same space must replay from cache
(>= 90% hit rate — in practice 100%) and emit a byte-identical report:
the report deliberately excludes wall-clock timings and cache counters
so warm re-plans are reproducible artifacts.
"""

import json

from repro.api import Scenario
from repro.exec import ResultCache
from repro.plan import build_plan_report, plan_scenario, validate_plan_report


def base_scenario() -> Scenario:
    return Scenario(
        env="hybrid", nodes=2, gpus_per_node=4, num_layers=8,
        hidden_size=256, num_attention_heads=4, seq_length=512,
        micro_batch_size=2, global_batch_size=64, framework="holmes-base",
        trace_enabled=False, label="cache-reuse-base",
    )


def test_second_plan_is_cache_served_and_byte_identical(tmp_path):
    cache = ResultCache(tmp_path / "plan-cache")
    base = base_scenario()

    first = plan_scenario(base, budget=8, top_k=3, cache=cache)
    cold_hits, cold_misses = cache.hits, cache.misses
    assert cold_misses > 0  # the cold run actually simulated something

    second = plan_scenario(base, budget=8, top_k=3, cache=cache)
    warm_hits = cache.hits - cold_hits
    warm_misses = cache.misses - cold_misses
    warm_total = warm_hits + warm_misses
    assert warm_total > 0
    hit_rate = warm_hits / warm_total
    assert hit_rate >= 0.9, (
        f"warm re-plan hit rate {hit_rate:.2f} "
        f"({warm_hits} hits / {warm_misses} misses)"
    )

    report_a = build_plan_report(first)
    report_b = build_plan_report(second)
    validate_plan_report(report_a)
    validate_plan_report(report_b)
    assert (
        json.dumps(report_a, sort_keys=True)
        == json.dumps(report_b, sort_keys=True)
    )


def test_cross_process_reuse_via_cache_directory(tmp_path):
    # A fresh ResultCache over the same directory (new process, same disk)
    # also replays the plan without re-simulating.
    root = tmp_path / "plan-cache"
    base = base_scenario()
    plan_scenario(base, budget=6, top_k=2, cache=ResultCache(root))

    fresh = ResultCache(root)
    plan_scenario(base, budget=6, top_k=2, cache=fresh)
    assert fresh.misses == 0
    assert fresh.hits > 0
