"""Property tests for the planner's candidate enumerator."""

import dataclasses

import pytest

from repro.api import FRAMEWORK_PRESETS, Scenario, build
from repro.plan import (
    SEARCH_FRAMEWORKS,
    SEARCH_SCHEDULES,
    enumerate_candidates,
    enumerate_layouts,
    preset_scenarios,
)
from repro.validate.scenarios import sample_scenarios


def tiny_base(**overrides) -> Scenario:
    kwargs = dict(
        env="hybrid", nodes=2, gpus_per_node=4, num_layers=8,
        hidden_size=256, num_attention_heads=4, seq_length=512,
        micro_batch_size=2, global_batch_size=64, framework="holmes-base",
        trace_enabled=False, label="cand-base",
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


def sampled_bases(n=8, seed=3):
    """Small bases drawn through the metamorphic sampler (fault-free:
    the planner plans the healthy machine)."""
    bases = []
    for spec in sample_scenarios(n, seed=seed):
        scenario = spec.to_scenario()
        bases.append(dataclasses.replace(
            scenario, fault_seed=None, trace_enabled=False,
        ))
    return bases


def test_every_layout_divides_world_size():
    base = tiny_base()
    layouts = enumerate_layouts(base)
    assert layouts
    for t, p, d in layouts:
        assert t * p * d == base.world_size
        assert base.gpus_per_node % t == 0
        assert base.global_batch_size % (d * base.micro_batch_size) == 0


@pytest.mark.property
def test_layout_divisibility_over_sampled_bases():
    for base in sampled_bases():
        for t, p, d in enumerate_layouts(base):
            assert t * p * d == base.world_size, base.label
            assert base.gpus_per_node % t == 0
            assert base.global_batch_size % (d * base.micro_batch_size) == 0
            assert p <= base.num_layers


def test_candidates_carry_whole_microbatch_workloads():
    base = tiny_base()
    for candidate in enumerate_candidates(base):
        assert candidate.global_batch_size == base.global_batch_size
        assert candidate.num_microbatches >= 1
        assert (
            candidate.data * candidate.micro_batch_size
            * candidate.num_microbatches
            == candidate.global_batch_size
        )
        if candidate.schedule == "interleaved":
            assert candidate.pipeline >= 2
            assert candidate.num_chunks == 2
            assert candidate.num_microbatches % candidate.pipeline == 0
        else:
            assert candidate.num_chunks == 1


def test_no_duplicate_canonical_layouts():
    base = tiny_base()
    candidates = enumerate_candidates(base)
    digests = [c.digest() for c in candidates]
    assert len(digests) == len(set(digests))


@pytest.mark.property
def test_no_duplicate_canonical_layouts_over_sampled_bases():
    for base in sampled_bases():
        digests = [c.digest() for c in enumerate_candidates(base)]
        assert len(digests) == len(set(digests)), base.label


def test_enumeration_is_deterministic():
    base = tiny_base()
    first = enumerate_candidates(base)
    second = enumerate_candidates(base)
    assert first == second
    # and stable across an equal-but-reconstructed base
    third = enumerate_candidates(tiny_base())
    assert first == third


def test_placements_are_valid_permutations():
    base = tiny_base()
    # One candidate per placement strategy is enough: placement depends on
    # (env, layout, strategy), not on the optimizer/schedule axes.
    seen = set()
    for candidate in enumerate_candidates(base):
        spec = FRAMEWORK_PRESETS[candidate.framework]
        key = (candidate.tensor, candidate.pipeline, spec.placement_strategy)
        if key in seen:
            continue
        seen.add(key)
        plan = build(candidate).plan
        world = candidate.world_size
        physical = sorted(plan.placement.physical(r) for r in range(world))
        assert physical == list(range(world)), candidate.label


def test_unknown_axis_values_are_rejected():
    from repro.errors import ConfigurationError

    base = tiny_base()
    with pytest.raises(ConfigurationError):
        enumerate_candidates(base, schedules=["zigzag"])
    with pytest.raises(ConfigurationError):
        enumerate_candidates(base, frameworks=["not-a-framework"])


def test_search_axes_cover_the_strategy_space():
    base = tiny_base()
    candidates = enumerate_candidates(base)
    schedules = {c.schedule for c in candidates}
    assert schedules == set(SEARCH_SCHEDULES)
    placements = {
        FRAMEWORK_PRESETS[c.framework].placement_strategy for c in candidates
    }
    assert placements == {"holmes", "identity"}
    partitions = {
        FRAMEWORK_PRESETS[c.framework].partition_strategy
        for c in candidates
        if c.pipeline > 1
    }
    assert partitions == {"self_adapting", "uniform"}
    assert {c.framework for c in candidates} <= set(SEARCH_FRAMEWORKS)


def test_preset_scenarios_keep_the_base_layout():
    base = tiny_base(tensor=1, pipeline=2, data=4)
    baselines = preset_scenarios(base)
    names = {b.framework for b in baselines}
    assert "holmes" in names and "megatron-lm" in names
    for baseline in baselines:
        assert (baseline.tensor, baseline.pipeline, baseline.data) == (1, 2, 4)
        assert baseline.trace_enabled
        assert baseline.label == f"preset:{baseline.framework}"
