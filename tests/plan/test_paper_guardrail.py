"""Paper guardrail: ``repro plan`` never loses to a framework preset.

On every Table-3 environment (parameter group 1, 4 nodes: homogeneous
InfiniBand / RoCE / Ethernet plus the heterogeneous hybrid machine) and
the Table-5 scale point (hybrid, 8 nodes, parameter group 3), the layout
the planner discovers must match or beat every ``repro.frameworks``
preset run on the table's own layout — the paper's "Holmes finds the
best partition" claim, held as a regression gate.

Paper-scale models make these runs seconds each, so the module is
``slow``-marked; nightly CI picks it up via ``-m "slow or property"``.
"""

import pytest

from repro.api import Scenario
from repro.bench.paramgroups import PARAM_GROUPS
from repro.plan import plan_scenario

pytestmark = pytest.mark.slow

#: (env, nodes, parameter group) — Table 3 rows plus the Table 5 point.
TABLE_ENVS = [
    ("ib", 4, 1),
    ("roce", 4, 1),
    ("ethernet", 4, 1),
    ("hybrid", 4, 1),
    ("hybrid", 8, 3),
]


@pytest.mark.parametrize(
    "env,nodes,group", TABLE_ENVS,
    ids=[f"{e}-{n}x8-g{g}" for e, n, g in TABLE_ENVS],
)
def test_discovered_layout_never_loses_to_presets(env, nodes, group):
    base = Scenario.from_group(
        env, nodes, PARAM_GROUPS[group],
        framework="holmes-base", trace_enabled=False,
        label=f"guardrail:{env}:{nodes}x8:g{group}",
    )
    result = plan_scenario(base, budget=12, top_k=3)

    assert result.baselines, "no preset baselines were confirmed"
    best_preset = max(result.baselines, key=lambda r: r.tflops)
    assert result.beats_presets, (
        f"{env} {nodes}x8 group {group}: discovered "
        f"{result.best.describe()} loses to {best_preset.describe()}"
    )
    # The deviation gate holds at paper scale too.
    assert result.within_tolerance, (
        f"max deviation {result.max_deviation:.4f} > {result.tolerance:.4f}"
    )
    # And the discovery is real search output, not a degenerate space.
    assert result.enumerated > len(result.baselines)
    assert result.searched >= 1
