"""Planner conformance: the cheap search tier and the executed confirm
tier agree on the winning layout.

The two-phase search prunes with ``auto``-fidelity simulation and only
confirms the finalists with executed runs, so the whole design rests on
the tiers ranking candidates the same way.  Over metamorphically sampled
small scenarios (faults stripped — the planner plans the healthy
machine), the search-tier top-1 must be a near-tie of the executed-tier
top-1 within the declared :data:`PLAN_RANK_RTOL`, and every dual-phase
candidate's search-vs-confirm deviation must stay within the planner's
declared tolerance.
"""

import dataclasses

import pytest

from repro.plan import PLAN_FIDELITY_RTOL, PLAN_RANK_RTOL, plan_scenario
from repro.validate.scenarios import sample_scenarios

#: (budget, top_k) — confirm every searched survivor so the executed
#: ranking covers the same candidates the search tier ranked.
BUDGET = 6

SPECS = [
    spec for spec in sample_scenarios(14, seed=7)
]


def planner_base(spec):
    scenario = spec.to_scenario()
    return dataclasses.replace(scenario, fault_seed=None, trace_enabled=False)


@pytest.mark.property
@pytest.mark.parametrize("spec", SPECS, ids=[s.name for s in SPECS])
def test_search_and_confirm_tiers_agree_on_top1(spec):
    base = planner_base(spec)
    result = plan_scenario(
        base,
        budget=BUDGET,
        top_k=BUDGET,
        search_fidelity="auto",
        confirm_fidelity="executed",
    )

    dual = [r for r in result.discovered if r.search_tflops is not None]
    assert dual, "no dual-phase candidates survived the search"

    # Top-1 agreement under the near-tie tolerance: the layout the cheap
    # tier would pick must confirm within one rank band of the executed
    # winner.
    search_top1 = max(dual, key=lambda r: (r.search_tflops, r.label))
    exec_top1 = max(dual, key=lambda r: (r.tflops, r.label))
    assert search_top1.tflops >= (1.0 - PLAN_RANK_RTOL) * exec_top1.tflops, (
        f"{spec.describe()}: search tier picked {search_top1.label} "
        f"({search_top1.tflops:.2f} TFLOPS confirmed) but executed winner "
        f"is {exec_top1.label} ({exec_top1.tflops:.2f} TFLOPS)"
    )

    # Per-candidate fidelity gate: auto-tier estimates track executed runs
    # within the declared tolerance on every confirmed candidate.
    assert result.tolerance == PLAN_FIDELITY_RTOL
    assert result.within_tolerance, (
        f"{spec.describe()}: max deviation {result.max_deviation:.4f} "
        f"exceeds {result.tolerance:.4f}"
    )


@pytest.mark.property
def test_conformance_sample_is_large_enough():
    # The satellite contract: at least 10 sampled scenarios back the
    # conformance claim.
    assert len(SPECS) >= 10
