"""Tensor-parallel numerical equivalence: the sharded block must match the
unsharded model exactly — outputs, input gradients, and every parameter
gradient (reassembled from shards)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.model import TinyGPT, TinyGPTConfig
from repro.nn.tensor_parallel import (
    reassemble_block_grads,
    shard_block_params,
    tp_block_backward,
    tp_block_forward,
)

CONFIG = TinyGPTConfig(vocab_size=17, seq_length=6, hidden_size=16,
                       num_heads=4, num_blocks=2)


@pytest.fixture
def model():
    return TinyGPT(CONFIG, seed=3)


@pytest.fixture
def x():
    rng = np.random.default_rng(4)
    return rng.standard_normal((2, CONFIG.seq_length, CONFIG.hidden_size)) * 0.5


@pytest.fixture
def dout():
    rng = np.random.default_rng(5)
    return rng.standard_normal((2, CONFIG.seq_length, CONFIG.hidden_size))


class TestSharding:
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_shards_partition_weights(self, model, t):
        shards = shard_block_params(model, 0, t)
        assert len(shards) == t
        full_w1 = np.concatenate([s["w1"] for s in shards], axis=1)
        np.testing.assert_array_equal(full_w1, model.params["h0.mlp.w1"])
        full_wo = np.concatenate([s["wo"] for s in shards], axis=0)
        np.testing.assert_array_equal(full_wo, model.params["h0.attn.wo"])

    def test_indivisible_heads_rejected(self, model):
        with pytest.raises(ConfigurationError):
            shard_block_params(model, 0, 3)


class TestForwardEquivalence:
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_output_matches_unsharded(self, model, x, t):
        reference, _ = model._block_forward(x, 0)
        shards = shard_block_params(model, 0, t)
        sharded, _ = tp_block_forward(model, 0, x, shards)
        np.testing.assert_allclose(sharded, reference, atol=1e-12)

    def test_stacked_blocks_match(self, model, x):
        """Two sharded blocks chained reproduce the unsharded stack."""
        reference, _ = model.forward_blocks(x, 0, 2)
        h = x
        for block in range(2):
            shards = shard_block_params(model, block, 2)
            h, _ = tp_block_forward(model, block, h, shards)
        np.testing.assert_allclose(h, reference, atol=1e-12)


class TestBackwardEquivalence:
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_gradients_match_unsharded(self, model, x, dout, t):
        # Reference: unsharded block backward.
        _, ref_cache = model._block_forward(x, 0)
        ref_grads = model.zero_grads()
        ref_dx = model._block_backward(dout, ref_cache, 0, ref_grads)

        shards = shard_block_params(model, 0, t)
        _, caches = tp_block_forward(model, 0, x, shards)
        dx, shard_grads, replicated = tp_block_backward(
            model, 0, dout, caches, shards
        )
        np.testing.assert_allclose(dx, ref_dx, atol=1e-10)
        # Replicated parameter gradients (layernorms, row-parallel biases).
        for key, grad in replicated.items():
            np.testing.assert_allclose(
                grad, ref_grads[key], atol=1e-10, err_msg=key
            )
        # Sharded parameter gradients, reassembled.
        for key, grad in reassemble_block_grads(model, 0, shard_grads).items():
            np.testing.assert_allclose(
                grad, ref_grads[key], atol=1e-10, err_msg=key
            )

    def test_all_keys_covered(self, model, x, dout):
        """Replicated + reassembled grads cover every block-0 parameter."""
        shards = shard_block_params(model, 0, 2)
        _, caches = tp_block_forward(model, 0, x, shards)
        _, shard_grads, replicated = tp_block_backward(
            model, 0, dout, caches, shards
        )
        covered = set(replicated) | set(
            reassemble_block_grads(model, 0, shard_grads)
        )
        assert covered == set(model.block_param_keys(0))


class TestTensorParallelTrainer:
    @pytest.mark.parametrize("t", [1, 2, 4])
    def test_training_matches_single(self, t):
        from repro.nn.parallel_train import SingleTrainer, make_lm_batch
        from repro.nn.tensor_parallel import TensorParallelTrainer

        rng = np.random.default_rng(8)
        tokens, targets = make_lm_batch(rng, CONFIG, batch=4)
        single = SingleTrainer(CONFIG, seed=13)
        sharded = TensorParallelTrainer(CONFIG, t=t, seed=13)
        for _ in range(3):
            loss_s = single.step(tokens, targets)
            loss_t = sharded.step(tokens, targets)
            assert loss_t == pytest.approx(loss_s, abs=1e-10)
        for key in single.model.params:
            np.testing.assert_allclose(
                single.model.params[key], sharded.model.params[key],
                atol=1e-8, err_msg=key,
            )

    def test_invalid_degree_rejected(self):
        from repro.nn.tensor_parallel import TensorParallelTrainer

        with pytest.raises(ConfigurationError):
            TensorParallelTrainer(CONFIG, t=0)
