"""The parallelism-correctness suite: data- and pipeline-parallel training
must match single-process training numerically, and real training must
learn."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.model import TinyGPTConfig
from repro.nn.optim import SGD, Adam
from repro.nn.parallel_train import (
    DataParallelTrainer,
    PipelineParallelTrainer,
    SingleTrainer,
    make_lm_batch,
)

CONFIG = TinyGPTConfig(vocab_size=13, seq_length=8, hidden_size=8,
                       num_heads=2, num_blocks=4)


@pytest.fixture
def batch():
    rng = np.random.default_rng(7)
    return make_lm_batch(rng, CONFIG, batch=8)


class TestDataParallelEquivalence:
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_matches_single_trainer(self, world, batch):
        """The paper's data-parallel semantics: sharding the batch and ring
        all-reducing gradients equals full-batch training."""
        tokens, targets = batch
        single = SingleTrainer(CONFIG, seed=5)
        parallel = DataParallelTrainer(CONFIG, world=world, seed=5)
        for _ in range(3):
            single.step(tokens, targets)
            parallel.step(tokens, targets)
        for key in single.model.params:
            np.testing.assert_allclose(
                single.model.params[key], parallel.model.params[key],
                atol=1e-8, err_msg=key,
            )

    def test_replicas_stay_in_sync(self, batch):
        tokens, targets = batch
        trainer = DataParallelTrainer(CONFIG, world=4, seed=5)
        for _ in range(2):
            trainer.step(tokens, targets)
        assert trainer.replicas_in_sync()

    def test_indivisible_batch_rejected(self, batch):
        tokens, targets = batch
        trainer = DataParallelTrainer(CONFIG, world=3, seed=5)
        with pytest.raises(ConfigurationError):
            trainer.step(tokens, targets)

    def test_invalid_world_rejected(self):
        with pytest.raises(ConfigurationError):
            DataParallelTrainer(CONFIG, world=0)


class TestPipelineParallelEquivalence:
    @pytest.mark.parametrize("stages", [[4], [2, 2], [1, 3], [1, 1, 1, 1]])
    def test_matches_single_trainer(self, stages, batch):
        """Stage-split execution (including Holmes-style uneven splits)
        reproduces the unsharded model's training exactly."""
        tokens, targets = batch
        single = SingleTrainer(CONFIG, seed=9)
        pipeline = PipelineParallelTrainer(CONFIG, stages, seed=9)
        for _ in range(3):
            loss_s = single.step(tokens, targets)
            loss_p = pipeline.step(tokens, targets)
            assert loss_p == pytest.approx(loss_s, abs=1e-10)
        for key in single.model.params:
            np.testing.assert_allclose(
                single.model.params[key], pipeline.model.params[key],
                atol=1e-8, err_msg=key,
            )

    def test_boundary_traffic_recorded(self, batch):
        tokens, targets = batch
        pipeline = PipelineParallelTrainer(CONFIG, [2, 2], seed=9)
        pipeline.step(tokens, targets)
        # One activation forward + one gradient backward per boundary.
        assert len(pipeline.last_boundary_traffic) == 2
        act = pipeline.last_boundary_traffic[0]
        assert act.shape == (tokens.shape[0], CONFIG.seq_length,
                             CONFIG.hidden_size)

    def test_wrong_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineParallelTrainer(CONFIG, [3, 3])


class TestLearning:
    def test_training_reduces_loss(self):
        """Partial training 'to validate our approach' (paper S1): on a
        learnable synthetic LM task, loss falls well below uniform."""
        rng = np.random.default_rng(11)
        trainer = DataParallelTrainer(CONFIG, world=2, seed=0, lr=5e-3)
        uniform = np.log(CONFIG.vocab_size)
        losses = []
        for _ in range(60):
            tokens, targets = make_lm_batch(rng, CONFIG, batch=8)
            losses.append(trainer.step(tokens, targets))
        assert losses[0] == pytest.approx(uniform, rel=0.15)
        assert losses[-1] < 0.6 * uniform

    def test_pipeline_training_learns_too(self):
        rng = np.random.default_rng(12)
        trainer = PipelineParallelTrainer(CONFIG, [1, 3], seed=0, lr=5e-3)
        first = last = None
        for step in range(60):
            tokens, targets = make_lm_batch(rng, CONFIG, batch=8)
            loss = trainer.step(tokens, targets)
            first = first if first is not None else loss
            last = loss
        assert last < 0.6 * first


class TestOptimizers:
    def test_sgd_reduces_quadratic(self):
        params = {"w": np.array([10.0])}
        sgd = SGD(lr=0.1)
        for _ in range(50):
            sgd.step(params, {"w": 2 * params["w"]})
        assert abs(params["w"][0]) < 1e-3

    def test_sgd_momentum_accelerates(self):
        plain = {"w": np.array([10.0])}
        heavy = {"w": np.array([10.0])}
        sgd = SGD(lr=0.01)
        mom = SGD(lr=0.01, momentum=0.9)
        for _ in range(20):
            sgd.step(plain, {"w": 2 * plain["w"]})
            mom.step(heavy, {"w": 2 * heavy["w"]})
        assert abs(heavy["w"][0]) < abs(plain["w"][0])

    def test_adam_reduces_quadratic(self):
        params = {"w": np.array([5.0])}
        adam = Adam(lr=0.3)
        for _ in range(100):
            adam.step(params, {"w": 2 * params["w"]})
        assert abs(params["w"][0]) < 0.1

    def test_invalid_hyperparams_rejected(self):
        with pytest.raises(ConfigurationError):
            SGD(lr=0.0)
        with pytest.raises(ConfigurationError):
            SGD(lr=0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            Adam(lr=-1.0)
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)


class TestMicrobatching:
    @pytest.mark.parametrize("m", [2, 4])
    def test_accumulation_matches_full_batch(self, m, batch):
        """Gradient accumulation over equal microbatches is numerically the
        full-batch step — the invariant behind every pipeline schedule."""
        tokens, targets = batch
        full = SingleTrainer(CONFIG, seed=21)
        micro = SingleTrainer(CONFIG, seed=21, num_microbatches=m)
        for _ in range(3):
            loss_full = full.step(tokens, targets)
            loss_micro = micro.step(tokens, targets)
            assert loss_micro == pytest.approx(loss_full, abs=1e-10)
        for key in full.model.params:
            np.testing.assert_allclose(
                full.model.params[key], micro.model.params[key],
                atol=1e-8, err_msg=key,
            )

    def test_indivisible_batch_rejected(self, batch):
        tokens, targets = batch
        trainer = SingleTrainer(CONFIG, num_microbatches=3)
        with pytest.raises(ConfigurationError):
            trainer.step(tokens, targets)

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SingleTrainer(CONFIG, num_microbatches=0)


class TestComposedParallelism:
    def test_dp_over_microbatched_replicas(self, batch):
        """2D composition: data parallelism whose replicas each accumulate
        microbatches still equals plain full-batch training."""
        tokens, targets = batch
        reference = SingleTrainer(CONFIG, seed=31)
        # World 2, and each replica splits its shard into 2 microbatches:
        # emulate by running DP over microbatching SingleTrainers manually.
        from repro.collectives.ring import ring_allreduce
        from repro.nn.model import TinyGPT
        from repro.nn.optim import Adam
        from repro.nn.tensorops import (
            tree_flatten_grads,
            tree_unflatten_grads,
        )

        base = TinyGPT(CONFIG, seed=31)
        replicas = [base, base.clone()]
        optimizer = Adam(lr=1e-3)
        for _ in range(2):
            reference.step(tokens, targets)
            shard_grads = []
            for replica, tok, tgt in zip(
                replicas, np.split(tokens, 2), np.split(targets, 2)
            ):
                total = replica.zero_grads()
                for mb_tok, mb_tgt in zip(np.split(tok, 2), np.split(tgt, 2)):
                    _, grads = replica.loss_and_grads(mb_tok, mb_tgt)
                    for key in total:
                        total[key] += grads[key] / 2.0
                shard_grads.append(total)
            flats = [tree_flatten_grads(g) for g in shard_grads]
            mean = tree_unflatten_grads(
                ring_allreduce(flats)[0] / 2.0, shard_grads[0]
            )
            optimizer.step(base.params, mean)
            for key, value in base.params.items():
                replicas[1].params[key][...] = value
        for key in reference.model.params:
            np.testing.assert_allclose(
                reference.model.params[key], base.params[key],
                atol=1e-8, err_msg=key,
            )
