"""Full 3D parallelism, numerically: data x pipeline x tensor.

Composes all three parallel dimensions the way Megatron (and the paper)
does — DP replicas, each running a pipeline of stages, each stage's blocks
tensor-sharded — with gradient aggregation through the library's ring
all-reduce, and asserts the result is bit-for-bit (to float tolerance) the
same training trajectory as a single unsharded model.

This is the strongest correctness statement the numerical substrate can
make, and it is exactly the decomposition whose *timing* the simulator
prices for the paper's experiments.
"""

from typing import Dict, List, Sequence

import numpy as np
import pytest

from repro.collectives.ring import ring_allreduce
from repro.nn.model import TinyGPT, TinyGPTConfig
from repro.nn.optim import Adam
from repro.nn.parallel_train import SingleTrainer, make_lm_batch
from repro.nn.tensor_parallel import (
    reassemble_block_grads,
    shard_block_params,
    tp_block_backward,
    tp_block_forward,
)
from repro.nn.tensorops import (
    cross_entropy_backward,
    cross_entropy_forward,
    tree_flatten_grads,
    tree_unflatten_grads,
)

CONFIG = TinyGPTConfig(vocab_size=17, seq_length=8, hidden_size=16,
                       num_heads=4, num_blocks=4)


def tp_pp_loss_and_grads(
    model: TinyGPT, stage_blocks: Sequence[int], t: int,
    tokens: np.ndarray, targets: np.ndarray,
):
    """One replica's forward/backward: pipeline stages of TP-sharded blocks."""
    grads = model.zero_grads()
    boundaries = [0]
    for count in stage_blocks:
        boundaries.append(boundaries[-1] + count)

    shards = [
        shard_block_params(model, b, t) for b in range(model.config.num_blocks)
    ]
    x, emb_cache = model.embed(tokens)
    caches = []
    for stage in range(len(stage_blocks)):
        for b in range(boundaries[stage], boundaries[stage + 1]):
            x, cache = tp_block_forward(model, b, x, shards[b])
            caches.append(cache)
    logits, head_cache = model.head(x)
    loss, ce_cache = cross_entropy_forward(logits, targets)

    dx = model.head_backward(cross_entropy_backward(ce_cache), head_cache, grads)
    for b in reversed(range(model.config.num_blocks)):
        dx, shard_grads, replicated = tp_block_backward(
            model, b, dx, caches[b], shards[b]
        )
        for key, grad in replicated.items():
            grads[key] += grad
        for key, grad in reassemble_block_grads(model, b, shard_grads).items():
            grads[key] += grad
    model.embed_backward(dx, emb_cache, grads)
    return float(loss), grads


class Trainer3D:
    """d DP replicas x pipeline stages x t tensor shards."""

    def __init__(self, config, stage_blocks, t, world, seed=0, lr=1e-3):
        base = TinyGPT(config, seed=seed)
        self.replicas = [base] + [base.clone() for _ in range(world - 1)]
        self.stage_blocks = list(stage_blocks)
        self.t = t
        self.world = world
        self.optimizer = Adam(lr=lr)

    @property
    def model(self):
        return self.replicas[0]

    def step(self, tokens, targets):
        shard_grads: List[Dict[str, np.ndarray]] = []
        losses = []
        for replica, tok, tgt in zip(
            self.replicas, np.split(tokens, self.world),
            np.split(targets, self.world),
        ):
            loss, grads = tp_pp_loss_and_grads(
                replica, self.stage_blocks, self.t, tok, tgt
            )
            losses.append(loss)
            shard_grads.append(grads)
        flats = [tree_flatten_grads(g) for g in shard_grads]
        mean = tree_unflatten_grads(
            ring_allreduce(flats)[0] / self.world, shard_grads[0]
        )
        self.optimizer.step(self.model.params, mean)
        for replica in self.replicas[1:]:
            for key, value in self.model.params.items():
                replica.params[key][...] = value
        return float(np.mean(losses))


class Test3DParallelism:
    @pytest.mark.parametrize(
        "stages,t,world",
        [
            ([2, 2], 2, 2),
            ([1, 3], 4, 2),
            ([1, 1, 2], 2, 4),
            ([4], 4, 1),
        ],
    )
    def test_3d_matches_serial_training(self, stages, t, world):
        rng = np.random.default_rng(17)
        tokens, targets = make_lm_batch(rng, CONFIG, batch=8)
        serial = SingleTrainer(CONFIG, seed=23)
        parallel = Trainer3D(CONFIG, stages, t, world, seed=23)
        for _ in range(3):
            loss_s = serial.step(tokens, targets)
            loss_p = parallel.step(tokens, targets)
            assert loss_p == pytest.approx(loss_s, abs=1e-9)
        for key in serial.model.params:
            np.testing.assert_allclose(
                serial.model.params[key], parallel.model.params[key],
                atol=1e-8, err_msg=key,
            )

    def test_3d_learns(self):
        rng = np.random.default_rng(19)
        trainer = Trainer3D(CONFIG, [2, 2], t=2, world=2, seed=0, lr=5e-3)
        first = last = None
        for _ in range(40):
            tokens, targets = make_lm_batch(rng, CONFIG, batch=8)
            loss = trainer.step(tokens, targets)
            first = first if first is not None else loss
            last = loss
        assert last < 0.75 * first
