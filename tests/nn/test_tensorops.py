"""Finite-difference verification of every hand-derived backward pass."""

import numpy as np
import pytest

from repro.nn import tensorops as ops

RNG = np.random.default_rng(0)
EPS = 1e-5


def numerical_grad(fn, x, eps=EPS):
    """Central finite differences of a scalar function w.r.t. array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestLinear:
    def test_backward_matches_fd(self):
        x = RNG.standard_normal((2, 3, 4))
        w = RNG.standard_normal((4, 5))
        b = RNG.standard_normal(5)
        dy = RNG.standard_normal((2, 3, 5))

        def loss():
            y, _ = ops.linear_forward(x, w, b)
            return float((y * dy).sum())

        _, cache = ops.linear_forward(x, w, b)
        dx, dw, db = ops.linear_backward(dy, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(dw, numerical_grad(loss, w), atol=1e-6)
        np.testing.assert_allclose(db, numerical_grad(loss, b), atol=1e-6)


class TestLayerNorm:
    def test_backward_matches_fd(self):
        x = RNG.standard_normal((2, 3, 6))
        g = RNG.standard_normal(6)
        b = RNG.standard_normal(6)
        dy = RNG.standard_normal((2, 3, 6))

        def loss():
            y, _ = ops.layernorm_forward(x, g, b)
            return float((y * dy).sum())

        _, cache = ops.layernorm_forward(x, g, b)
        dx, dg, db = ops.layernorm_backward(dy, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-5)
        np.testing.assert_allclose(dg, numerical_grad(loss, g), atol=1e-5)
        np.testing.assert_allclose(db, numerical_grad(loss, b), atol=1e-5)

    def test_forward_normalises(self):
        x = RNG.standard_normal((4, 8)) * 5 + 3
        y, _ = ops.layernorm_forward(x, np.ones(8), np.zeros(8))
        np.testing.assert_allclose(y.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(y.std(axis=-1), 1.0, atol=1e-2)


class TestGELU:
    def test_backward_matches_fd(self):
        x = RNG.standard_normal((3, 4))
        dy = RNG.standard_normal((3, 4))

        def loss():
            y, _ = ops.gelu_forward(x)
            return float((y * dy).sum())

        _, cache = ops.gelu_forward(x)
        dx = ops.gelu_backward(dy, cache)
        np.testing.assert_allclose(dx, numerical_grad(loss, x), atol=1e-6)

    def test_values(self):
        y, _ = ops.gelu_forward(np.array([0.0, 100.0, -100.0]))
        np.testing.assert_allclose(y, [0.0, 100.0, 0.0], atol=1e-6)


class TestAttention:
    def test_backward_matches_fd(self):
        B, T, C, H = 2, 4, 6, 2
        q = RNG.standard_normal((B, T, C)) * 0.5
        k = RNG.standard_normal((B, T, C)) * 0.5
        v = RNG.standard_normal((B, T, C)) * 0.5
        dy = RNG.standard_normal((B, T, C))

        def loss():
            y, _ = ops.attention_forward(q, k, v, H)
            return float((y * dy).sum())

        _, cache = ops.attention_forward(q, k, v, H)
        dq, dk, dv = ops.attention_backward(dy, cache)
        np.testing.assert_allclose(dq, numerical_grad(loss, q), atol=1e-5)
        np.testing.assert_allclose(dk, numerical_grad(loss, k), atol=1e-5)
        np.testing.assert_allclose(dv, numerical_grad(loss, v), atol=1e-5)

    def test_causality(self):
        """Output at position t must not depend on inputs after t."""
        B, T, C, H = 1, 5, 4, 2
        q = RNG.standard_normal((B, T, C))
        k = RNG.standard_normal((B, T, C))
        v = RNG.standard_normal((B, T, C))
        base, _ = ops.attention_forward(q, k, v, H)
        k2, v2 = k.copy(), v.copy()
        k2[:, -1] += 10.0
        v2[:, -1] += 10.0
        bumped, _ = ops.attention_forward(q, k2, v2, H)
        np.testing.assert_allclose(base[:, :-1], bumped[:, :-1], atol=1e-10)
        assert not np.allclose(base[:, -1], bumped[:, -1])

    def test_probs_rows_sum_to_one(self):
        q = RNG.standard_normal((1, 4, 4))
        _, (qh, kh, vh, probs) = ops.attention_forward(q, q, q, 2)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-10)


class TestCrossEntropy:
    def test_backward_matches_fd(self):
        B, T, V = 2, 3, 5
        logits = RNG.standard_normal((B, T, V))
        targets = RNG.integers(0, V, (B, T))

        def loss():
            value, _ = ops.cross_entropy_forward(logits, targets)
            return float(value)

        _, cache = ops.cross_entropy_forward(logits, targets)
        dlogits = ops.cross_entropy_backward(cache)
        np.testing.assert_allclose(
            dlogits, numerical_grad(loss, logits), atol=1e-6
        )

    def test_uniform_logits_give_log_v(self):
        logits = np.zeros((2, 4, 7))
        targets = np.zeros((2, 4), dtype=int)
        loss, _ = ops.cross_entropy_forward(logits, targets)
        assert loss == pytest.approx(np.log(7))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((1, 2, 3), -50.0)
        targets = np.array([[1, 2]])
        logits[0, 0, 1] = 50.0
        logits[0, 1, 2] = 50.0
        loss, _ = ops.cross_entropy_forward(logits, targets)
        assert loss < 1e-6


class TestEmbedding:
    def test_backward_scatters(self):
        table = RNG.standard_normal((10, 4))
        tokens = np.array([[1, 1, 3]])
        y, cache = ops.embedding_forward(tokens, table)
        np.testing.assert_array_equal(y[0, 0], table[1])
        dy = np.ones((1, 3, 4))
        dtable = ops.embedding_backward(dy, cache)
        np.testing.assert_allclose(dtable[1], 2.0 * np.ones(4))  # used twice
        np.testing.assert_allclose(dtable[3], np.ones(4))
        np.testing.assert_allclose(dtable[0], np.zeros(4))


class TestGradFlattening:
    def test_round_trip(self):
        grads = {
            "b": RNG.standard_normal((2, 3)),
            "a": RNG.standard_normal(5),
        }
        flat = ops.tree_flatten_grads(grads)
        assert flat.shape == (11,)
        restored = ops.tree_unflatten_grads(flat, grads)
        for key in grads:
            np.testing.assert_array_equal(restored[key], grads[key])

    def test_size_mismatch_rejected(self):
        grads = {"a": np.zeros(3)}
        with pytest.raises(ValueError):
            ops.tree_unflatten_grads(np.zeros(5), grads)
