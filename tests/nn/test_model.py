"""Tests for the NumPy GPT: gradient checks and structural invariants."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.model import TinyGPT, TinyGPTConfig

CONFIG = TinyGPTConfig(vocab_size=11, seq_length=6, hidden_size=8,
                       num_heads=2, num_blocks=2)


@pytest.fixture
def model():
    return TinyGPT(CONFIG, seed=1)


@pytest.fixture
def batch():
    rng = np.random.default_rng(2)
    tokens = rng.integers(0, CONFIG.vocab_size, (2, CONFIG.seq_length))
    targets = rng.integers(0, CONFIG.vocab_size, (2, CONFIG.seq_length))
    return tokens, targets


class TestStructure:
    def test_parameter_keys(self, model):
        assert "wte" in model.params and "wpe" in model.params
        assert "h0.attn.wqkv" in model.params
        assert "h1.mlp.w2" in model.params
        assert model.block_param_keys(0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            TinyGPTConfig(hidden_size=10, num_heads=3)
        with pytest.raises(ConfigurationError):
            TinyGPTConfig(num_blocks=0)

    def test_clone_is_deep(self, model):
        other = model.clone()
        other.params["wte"][0, 0] += 1.0
        assert model.params["wte"][0, 0] != other.params["wte"][0, 0]

    def test_sequence_too_long_rejected(self, model):
        tokens = np.zeros((1, CONFIG.seq_length + 1), dtype=int)
        with pytest.raises(ConfigurationError):
            model.embed(tokens)


class TestGradients:
    def test_loss_and_grads_consistent_with_loss(self, model, batch):
        tokens, targets = batch
        loss, _ = model.loss_and_grads(tokens, targets)
        assert loss == pytest.approx(model.loss(tokens, targets))

    def test_full_model_gradcheck_sampled(self, model, batch):
        """Finite-difference check on a sample of parameters from every
        layer family (full FD over all params would be slow)."""
        tokens, targets = batch
        _, grads = model.loss_and_grads(tokens, targets)
        rng = np.random.default_rng(3)
        eps = 1e-5
        for key in ["wte", "wpe", "h0.attn.wqkv", "h0.mlp.w1", "h1.attn.wo",
                    "h1.mlp.b2", "h0.ln1.g", "ln_f.b"]:
            param = model.params[key]
            flat = param.ravel()
            for _ in range(3):
                i = rng.integers(0, flat.size)
                orig = flat[i]
                flat[i] = orig + eps
                hi = model.loss(tokens, targets)
                flat[i] = orig - eps
                lo = model.loss(tokens, targets)
                flat[i] = orig
                fd = (hi - lo) / (2 * eps)
                assert grads[key].ravel()[i] == pytest.approx(fd, abs=1e-4), key

    def test_initial_loss_near_uniform(self, model, batch):
        tokens, targets = batch
        assert model.loss(tokens, targets) == pytest.approx(
            np.log(CONFIG.vocab_size), rel=0.1
        )

    def test_block_slicing_matches_full_forward(self, model, batch):
        tokens, _ = batch
        x, _ = model.embed(tokens)
        full, _ = model.forward_blocks(x, 0, CONFIG.num_blocks)
        half1, _ = model.forward_blocks(x, 0, 1)
        half2, _ = model.forward_blocks(half1, 1, 2)
        np.testing.assert_allclose(full, half2, atol=1e-12)

    def test_causal_prediction_independence(self, model):
        """Changing a later input token must not change earlier logits."""
        tokens = np.zeros((1, CONFIG.seq_length), dtype=int)
        x, _ = model.embed(tokens)
        x, _ = model.forward_blocks(x, 0, CONFIG.num_blocks)
        logits_a, _ = model.head(x)
        tokens2 = tokens.copy()
        tokens2[0, -1] = 5
        x2, _ = model.embed(tokens2)
        x2, _ = model.forward_blocks(x2, 0, CONFIG.num_blocks)
        logits_b, _ = model.head(x2)
        np.testing.assert_allclose(
            logits_a[:, :-1], logits_b[:, :-1], atol=1e-10
        )
