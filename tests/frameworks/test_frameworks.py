"""Tests for framework presets and the comparison runner."""

import pytest

from repro.frameworks import (
    FRAMEWORKS,
    HOLMES,
    MEGATRON_DEEPSPEED,
    MEGATRON_LLAMA,
    MEGATRON_LM,
    holmes_ablation,
    simulate_framework,
)
from repro.frameworks.base import environment_is_heterogeneous
from repro.hardware.nic import NICType
from repro.hardware.presets import homogeneous_topology, make_topology
from repro.model.config import GPTConfig
from repro.parallel.degrees import ParallelConfig

MODEL = GPTConfig(num_layers=8, hidden_size=1024, num_attention_heads=8,
                  seq_length=512, vocab_size=8192)


@pytest.fixture
def hybrid_topo():
    # Two nodes per cluster so DP groups span nodes and NIC choice matters.
    return make_topology(
        [(2, NICType.ROCE), (2, NICType.INFINIBAND)],
        inter_cluster_rdma=False, gpus_per_node=2,
    )


def parallel_for(topo, t=1, p=2):
    d = topo.world_size // (t * p)
    return ParallelConfig(tensor=t, pipeline=p, data=d,
                          micro_batch_size=2, global_batch_size=2 * d * 4)


class TestPresets:
    def test_registry_contents(self):
        assert set(FRAMEWORKS) == {
            "holmes", "megatron-lm", "megatron-deepspeed", "megatron-llama"
        }

    def test_only_holmes_is_nic_aware(self):
        assert HOLMES.nic_aware
        assert not MEGATRON_LM.nic_aware
        assert not MEGATRON_DEEPSPEED.nic_aware
        assert not MEGATRON_LLAMA.nic_aware

    def test_holmes_uses_eq2_partition_and_overlap(self):
        assert HOLMES.partition_strategy == "self_adapting"
        assert HOLMES.optimizer.name == "overlapped"
        assert HOLMES.alpha == 1.05  # the paper's hyper-parameter

    def test_llama_contributes_overlap_only(self):
        assert MEGATRON_LLAMA.optimizer.name == "overlapped"
        assert MEGATRON_LLAMA.partition_strategy == "uniform"

    def test_deepspeed_has_engine_overhead(self):
        assert MEGATRON_DEEPSPEED.optimizer.step_overhead > 0


class TestAblation:
    def test_full_holmes_is_default(self):
        assert holmes_ablation().name == "holmes"

    def test_no_sap(self):
        spec = holmes_ablation(self_adapting_partition=False)
        assert spec.name == "holmes-no-sap"
        assert spec.partition_strategy == "uniform"
        assert spec.optimizer.name == "overlapped"

    def test_no_overlap(self):
        spec = holmes_ablation(overlapped_optimizer=False)
        assert spec.name == "holmes-no-overlap"
        assert spec.optimizer.name == "distributed"

    def test_no_both(self):
        spec = holmes_ablation(False, False)
        assert spec.name == "holmes-no-sap-no-overlap"
        assert spec.nic_aware  # NIC selection always stays


class TestHeterogeneityDetection:
    def test_hybrid_is_heterogeneous(self, hybrid_topo):
        assert environment_is_heterogeneous(hybrid_topo)

    def test_homogeneous_is_not(self):
        assert not environment_is_heterogeneous(
            homogeneous_topology(2, NICType.ROCE, gpus_per_node=2)
        )

    def test_split_same_family_is_homogeneous(self):
        topo = make_topology(
            [(1, NICType.INFINIBAND), (1, NICType.INFINIBAND)],
            inter_cluster_rdma=False, gpus_per_node=2,
        )
        assert not environment_is_heterogeneous(topo)


class TestSimulateFramework:
    def test_holmes_beats_baselines_in_heterogeneous_env(self, hybrid_topo):
        """The paper's Figure 6 ordering, on a miniature machine."""
        parallel = parallel_for(hybrid_topo)
        results = {
            name: simulate_framework(spec, hybrid_topo, parallel, MODEL,
                                     trace_enabled=False)
            for name, spec in FRAMEWORKS.items()
        }
        tflops = {name: r.tflops for name, r in results.items()}
        assert tflops["holmes"] > tflops["megatron-llama"]
        assert tflops["megatron-llama"] > tflops["megatron-deepspeed"]
        assert tflops["megatron-lm"] > tflops["megatron-deepspeed"]

    def test_baselines_forced_to_ethernet(self, hybrid_topo):
        parallel = parallel_for(hybrid_topo)
        result = simulate_framework(
            MEGATRON_LM, hybrid_topo, parallel, MODEL, trace_enabled=False
        )
        assert result.audit.dp_groups_rdma == 0

    def test_baselines_keep_rdma_in_homogeneous_env(self):
        topo = homogeneous_topology(2, NICType.INFINIBAND, gpus_per_node=2)
        parallel = parallel_for(topo)
        result = simulate_framework(
            MEGATRON_LM, topo, parallel, MODEL, trace_enabled=False
        )
        assert result.audit.dp_rdma_fraction == 1.0

    def test_with_overrides(self):
        spec = MEGATRON_LM.with_overrides(alpha=1.2)
        assert spec.alpha == 1.2
        assert spec.name == MEGATRON_LM.name
