"""Unit tests for the simulation event kernel."""

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import SimEngine
from repro.simcore.event import Condition


@pytest.fixture
def engine():
    return SimEngine()


class TestSimEvent:
    def test_starts_pending(self, engine):
        ev = engine.event("x")
        assert not ev.triggered
        assert ev.value is None

    def test_succeed_delivers_value(self, engine):
        ev = engine.event("x")
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42

    def test_succeed_twice_raises(self, engine):
        ev = engine.event("x")
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_callback_runs_on_succeed(self, engine):
        ev = engine.event("x")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == []
        ev.succeed("payload")
        assert seen == ["payload"]

    def test_callback_on_triggered_event_runs_immediately(self, engine):
        ev = engine.event("x")
        ev.succeed(7)
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_multiple_callbacks_all_run(self, engine):
        ev = engine.event("x")
        seen = []
        for i in range(5):
            ev.add_callback(lambda e, i=i: seen.append(i))
        ev.succeed()
        assert seen == [0, 1, 2, 3, 4]


class TestCondition:
    def test_all_of_fires_after_all_children(self, engine):
        children = [engine.event(f"c{i}") for i in range(3)]
        cond = Condition(engine, children)
        children[0].succeed("a")
        children[1].succeed("b")
        assert not cond.triggered
        children[2].succeed("c")
        assert cond.triggered
        assert cond.value == {0: "a", 1: "b", 2: "c"}

    def test_any_of_fires_after_first_child(self, engine):
        children = [engine.event(f"c{i}") for i in range(3)]
        cond = Condition(engine, children, wait_count=1)
        children[1].succeed("mid")
        assert cond.triggered
        assert cond.value == {1: "mid"}

    def test_empty_condition_fires_immediately(self, engine):
        cond = Condition(engine, [])
        assert cond.triggered

    def test_wait_count_beyond_children_raises(self, engine):
        with pytest.raises(SimulationError):
            Condition(engine, [engine.event()], wait_count=2)

    def test_pretriggered_children_count(self, engine):
        a = engine.event("a")
        a.succeed(1)
        b = engine.event("b")
        cond = Condition(engine, [a, b])
        assert not cond.triggered
        b.succeed(2)
        assert cond.triggered
