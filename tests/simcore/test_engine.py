"""Unit tests for the DES engine: scheduling, ordering, time semantics."""

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import SimEngine
from repro.simcore.process import Timeout


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert SimEngine().now == 0.0

    def test_timeout_event_advances_clock(self):
        engine = SimEngine()
        ev = engine.timeout_event(2.5, value="done")
        engine.run()
        assert engine.now == pytest.approx(2.5)
        assert ev.value == "done"

    def test_events_fire_in_time_order(self):
        engine = SimEngine()
        order = []
        for delay in (3.0, 1.0, 2.0):
            engine.timeout_event(delay).add_callback(
                lambda e, d=delay: order.append(d)
            )
        engine.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_events_fire_in_schedule_order(self):
        engine = SimEngine()
        order = []
        for i in range(10):
            engine.timeout_event(1.0).add_callback(lambda e, i=i: order.append(i))
        engine.run()
        assert order == list(range(10))

    def test_run_until_bounds_time(self):
        engine = SimEngine()
        engine.timeout_event(10.0)
        final = engine.run(until=4.0)
        assert final == 4.0
        assert engine.now == 4.0

    def test_scheduling_in_past_raises(self):
        engine = SimEngine()
        engine.timeout_event(5.0)
        engine.run()
        with pytest.raises(SimulationError):
            engine._schedule_at(1.0, lambda: None)

    def test_max_steps_guard(self):
        engine = SimEngine()

        def rearm():
            engine._schedule_at(engine.now, rearm)

        engine._schedule_at(0.0, rearm)
        with pytest.raises(SimulationError, match="exceeded"):
            engine.run(max_steps=100)


class TestRunProcess:
    def test_returns_generator_value(self):
        engine = SimEngine()

        def body():
            yield Timeout(1.0)
            return "result"

        assert engine.run_process(body()) == "result"

    def test_deadlock_detected(self):
        engine = SimEngine()

        def body():
            yield engine.event("never-fires")

        with pytest.raises(SimulationError, match="deadlock"):
            engine.run_process(body())

    def test_steps_counter_increments(self):
        engine = SimEngine()
        engine.timeout_event(1.0)
        engine.timeout_event(2.0)
        engine.run()
        assert engine.steps >= 2
