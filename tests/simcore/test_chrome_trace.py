"""Tests for Chrome trace export."""

import io
import json

import pytest

from repro.simcore.chrome_trace import (
    default_rank_names,
    export_chrome_trace,
    span_to_event,
)
from repro.simcore.trace import Span, TraceRecorder


class TestSpanToEvent:
    def test_complete_event_shape(self):
        span = Span(rank=3, kind="compute", label="forward",
                    start=0.5, end=1.5, bytes=0, meta=(("mb", 2),))
        event = span_to_event(span)
        assert event["ph"] == "X"
        assert event["tid"] == 3
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(1.0e6)
        assert event["args"]["mb"] == 2

    def test_bytes_in_args(self):
        span = Span(0, "p2p", "send:act", 0.0, 0.1, bytes=1024)
        assert span_to_event(span)["args"]["bytes"] == 1024


class TestExport:
    def test_round_trip_json(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        trace.record(1, "collective", "dp-sync", 1.0, 2.0)
        payload = json.loads(export_chrome_trace(trace))
        assert len(payload["traceEvents"]) == 2
        assert payload["displayTimeUnit"] == "ms"

    def test_writes_to_fileobj(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        buffer = io.StringIO()
        export_chrome_trace(trace, buffer)
        assert json.loads(buffer.getvalue())["traceEvents"]

    def test_rank_names_emitted_as_metadata(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        payload = json.loads(
            export_chrome_trace(trace, rank_names={0: "rank0 s0"})
        )
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "rank0 s0"


class TestDefaultRankNames:
    def test_names_mention_stage_and_cluster(self):
        from repro.bench.paramgroups import PARAM_GROUPS
        from repro.bench.scenarios import hybrid2_env
        from repro.core.scheduler import HolmesScheduler

        topo = hybrid2_env(4)
        group = PARAM_GROUPS[1]
        plan = HolmesScheduler().plan(
            topo, group.parallel_for(32), group.model
        )
        names = default_rank_names(plan)
        assert len(names) == 32
        assert "s0" in names[0] and "roce" in names[0]
        assert "s1" in names[31] and "infiniband" in names[31]
