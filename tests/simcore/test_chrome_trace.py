"""Tests for Chrome trace export."""

import io
import json
import os

import pytest

from repro.simcore.chrome_trace import (
    default_rank_names,
    export_chrome_trace,
    fault_span_to_instant,
    span_to_event,
)
from repro.simcore.trace import Span, TraceRecorder

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_trace.json")


class TestSpanToEvent:
    def test_complete_event_shape(self):
        span = Span(rank=3, kind="compute", label="forward",
                    start=0.5, end=1.5, bytes=0, meta=(("mb", 2),))
        event = span_to_event(span)
        assert event["ph"] == "X"
        assert event["tid"] == 3
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(1.0e6)
        assert event["args"]["mb"] == 2

    def test_bytes_in_args(self):
        span = Span(0, "p2p", "send:act", 0.0, 0.1, bytes=1024)
        assert span_to_event(span)["args"]["bytes"] == 1024

    def test_round_trip_preserves_meta_and_bytes(self):
        span = Span(2, "nic", "nic-tx:act", 0.5, 0.9, bytes=4096,
                    meta=(("dst", 5), ("family", "roce")))
        event = json.loads(json.dumps(span_to_event(span)))
        assert event["args"] == {"dst": 5, "family": "roce", "bytes": 4096}
        assert event["cat"] == "nic"
        assert event["ts"] + event["dur"] == pytest.approx(0.9e6)

    def test_healthy_slow_factor_dropped_from_args(self):
        span = Span(0, "compute", "forward", 0.0, 1.0, meta=(("slow", 1.0),))
        assert "slow" not in span_to_event(span)["args"]
        slowed = Span(0, "compute", "forward", 0.0, 1.0, meta=(("slow", 3.0),))
        assert span_to_event(slowed)["args"]["slow"] == 3.0

    def test_synthetic_rank_maps_to_global_tid(self):
        span = Span(-1, "collective", "grads-sync", 0.0, 1.0)
        assert span_to_event(span)["tid"] == 0


class TestFaultInstants:
    def test_zero_duration_fault_becomes_instant(self):
        trace = TraceRecorder()
        trace.record(-1, "fault", "inject:nic-flap", 1.0, 1.0, target_node=2)
        payload = json.loads(export_chrome_trace(trace))
        [event] = payload["traceEvents"]
        assert event["ph"] == "i"
        assert event["s"] == "g"
        assert event["args"]["target_node"] == 2
        assert "dur" not in event

    def test_timed_fault_stays_a_slice(self):
        # communicator rebuilds have real duration: keep them as slices
        trace = TraceRecorder()
        trace.record(3, "fault", "comm-rebuild", 1.0, 1.5, dst=7)
        [event] = json.loads(export_chrome_trace(trace))["traceEvents"]
        assert event["ph"] == "X"
        assert event["tid"] == 3

    def test_instant_shape_direct(self):
        span = Span(-1, "fault", "recover:link-degrade", 2.0, 2.0,
                    meta=(("target_node", 0),))
        event = fault_span_to_instant(span)
        assert event["ts"] == pytest.approx(2.0e6)
        assert event["cat"] == "fault"


class TestFlowEvents:
    def _paired_trace(self):
        trace = TraceRecorder()
        trace.record(0, "p2p", "send:act.mb0", 1.0, 1.2, 1024, dst=1)
        trace.record(1, "idle", "recv-wait:act.mb0", 0.5, 1.3, 1024, src=0)
        return trace

    def test_send_recv_pair_produces_flow_arrow(self):
        payload = json.loads(export_chrome_trace(self._paired_trace()))
        flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
        assert len(flows) == 2
        start = next(e for e in flows if e["ph"] == "s")
        finish = next(e for e in flows if e["ph"] == "f")
        assert start["id"] == finish["id"]
        assert start["tid"] == 0 and finish["tid"] == 1
        assert start["ts"] == pytest.approx(1.2e6)  # bytes left the sender
        assert finish["ts"] == pytest.approx(1.3e6)  # delivery at receiver
        assert finish["bp"] == "e"

    def test_unmatched_send_has_no_flow(self):
        trace = TraceRecorder()
        trace.record(0, "p2p", "send:act.mb0", 1.0, 1.2, 1024, dst=1)
        payload = json.loads(export_chrome_trace(trace))
        assert not [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]

    def test_flow_events_can_be_disabled(self):
        payload = json.loads(
            export_chrome_trace(self._paired_trace(), flow_events=False)
        )
        assert not [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]


class TestExtraEvents:
    def test_extra_events_appended_verbatim(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        counter = {"name": "nic:n0", "ph": "C", "ts": 0.0, "pid": 0,
                   "args": {"percent": 50.0}}
        payload = json.loads(export_chrome_trace(trace, extra_events=[counter]))
        assert counter in payload["traceEvents"]


class TestGoldenSnapshot:
    def _golden_trace(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0, mb=0, stage=0)
        trace.record(0, "p2p", "send:act.mb0", 1.0, 1.2, 1024, dst=1)
        trace.record(0, "nic", "nic-tx:act.mb0", 1.0, 1.15, 1024,
                     dst=1, family="ethernet", src_node=0, dst_node=1)
        trace.record(1, "idle", "recv-wait:act.mb0", 0.0, 1.3, 1024, src=0)
        trace.record(-1, "fault", "inject:nic-flap", 1.1, 1.1,
                     target_node=1, target_rank=-1)
        trace.record(1, "compute", "forward", 1.3, 2.3, mb=0, stage=1)
        trace.record(1, "collective", "dp-sync", 2.3, 2.5, 2048)
        return trace

    def test_two_rank_run_matches_committed_golden(self):
        """Exporter output for a fixed 2-rank span set is frozen.

        A diff here means the Chrome-trace format changed: update
        ``data/golden_trace.json`` deliberately, never silently.
        """
        payload = export_chrome_trace(
            self._golden_trace(),
            rank_names={0: "rank0 s0", 1: "rank1 s1"},
            extra_events=[{"name": "nic:n0 ethernet", "ph": "C", "ts": 0.0,
                           "pid": 0, "args": {"percent": 12.5}}],
        )
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        assert json.loads(payload) == golden

    def test_golden_covers_every_phase_kind(self):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        phases = {e["ph"] for e in golden["traceEvents"]}
        assert phases == {"X", "M", "i", "s", "f", "C"}


class TestExport:
    def test_round_trip_json(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        trace.record(1, "collective", "dp-sync", 1.0, 2.0)
        payload = json.loads(export_chrome_trace(trace))
        assert len(payload["traceEvents"]) == 2
        assert payload["displayTimeUnit"] == "ms"

    def test_writes_to_fileobj(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        buffer = io.StringIO()
        export_chrome_trace(trace, buffer)
        assert json.loads(buffer.getvalue())["traceEvents"]

    def test_rank_names_emitted_as_metadata(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        payload = json.loads(
            export_chrome_trace(trace, rank_names={0: "rank0 s0"})
        )
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "rank0 s0"


class TestDefaultRankNames:
    def test_names_mention_stage_and_cluster(self):
        from repro.bench.paramgroups import PARAM_GROUPS
        from repro.bench.scenarios import hybrid2_env
        from repro.core.scheduler import HolmesScheduler

        topo = hybrid2_env(4)
        group = PARAM_GROUPS[1]
        plan = HolmesScheduler().plan(
            topo, group.parallel_for(32), group.model
        )
        names = default_rank_names(plan)
        assert len(names) == 32
        assert "s0" in names[0] and "roce" in names[0]
        assert "s1" in names[31] and "infiniband" in names[31]
