"""Unit tests for generator processes and their commands."""

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import SimEngine
from repro.simcore.process import AllOf, AnyOf, Process, Timeout, Wait


@pytest.fixture
def engine():
    return SimEngine()


class TestTimeout:
    def test_timeout_suspends_for_delay(self, engine):
        times = []

        def body():
            times.append(engine.now)
            yield Timeout(1.5)
            times.append(engine.now)

        engine.process(body())
        engine.run()
        assert times == [0.0, 1.5]

    def test_timeout_value_passed_back(self, engine):
        def body():
            got = yield Timeout(1.0, value="tick")
            return got

        assert engine.run_process(body()) == "tick"

    def test_negative_timeout_raises(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_zero_timeout_is_valid(self, engine):
        def body():
            yield Timeout(0.0)
            return engine.now

        assert engine.run_process(body()) == 0.0


class TestWaiting:
    def test_wait_returns_event_value(self, engine):
        ev = engine.timeout_event(2.0, value="late")

        def body():
            got = yield Wait(ev)
            return got, engine.now

        assert engine.run_process(body()) == ("late", 2.0)

    def test_bare_event_yield_is_wait(self, engine):
        ev = engine.timeout_event(1.0, value=9)

        def body():
            got = yield ev
            return got

        assert engine.run_process(body()) == 9

    def test_all_of_waits_for_slowest(self, engine):
        evs = [engine.timeout_event(d) for d in (1.0, 3.0, 2.0)]

        def body():
            yield AllOf(evs)
            return engine.now

        assert engine.run_process(body()) == 3.0

    def test_any_of_waits_for_fastest(self, engine):
        evs = [engine.timeout_event(d) for d in (5.0, 1.0, 3.0)]

        def body():
            yield AnyOf(evs)
            return engine.now

        assert engine.run_process(body()) == 1.0

    def test_any_of_empty_raises(self):
        with pytest.raises(SimulationError):
            AnyOf([])


class TestJoin:
    def test_yield_process_joins(self, engine):
        def child():
            yield Timeout(2.0)
            return "child-result"

        def parent():
            proc = engine.process(child(), name="child")
            got = yield proc
            return got, engine.now

        assert engine.run_process(parent()) == ("child-result", 2.0)

    def test_fork_join_parallel_children(self, engine):
        def child(delay):
            yield Timeout(delay)
            return delay

        def parent():
            procs = [engine.process(child(d)) for d in (1.0, 2.0, 3.0)]
            yield AllOf([p.done for p in procs])
            return engine.now

        # Children run concurrently: join at max, not sum.
        assert engine.run_process(parent()) == 3.0

    def test_done_event_carries_return(self, engine):
        def child():
            yield Timeout(1.0)
            return 123

        proc = engine.process(child())
        engine.run()
        assert not proc.alive
        assert proc.done.value == 123


class TestErrors:
    def test_non_generator_body_raises(self, engine):
        with pytest.raises(SimulationError, match="generator"):
            Process(engine, lambda: None)  # type: ignore[arg-type]

    def test_unknown_command_raises(self, engine):
        def body():
            yield "not-a-command"

        engine.process(body())
        with pytest.raises(SimulationError, match="unsupported command"):
            engine.run()
