"""Unit tests for Resource, Store, and Barrier."""

import pytest

from repro.errors import SimulationError
from repro.simcore.engine import SimEngine
from repro.simcore.process import Timeout, Wait
from repro.simcore.resource import Barrier, Resource, Store


@pytest.fixture
def engine():
    return SimEngine()


class TestResource:
    def test_immediate_grant_under_capacity(self, engine):
        res = Resource(engine, capacity=2)
        assert res.acquire().triggered
        assert res.acquire().triggered
        assert res.available == 0

    def test_waiter_queues_until_release(self, engine):
        res = Resource(engine, capacity=1)
        first = res.acquire()
        second = res.acquire()
        assert first.triggered and not second.triggered
        res.release()
        assert second.triggered

    def test_fifo_ordering(self, engine):
        res = Resource(engine, capacity=1)
        res.acquire()
        waiters = [res.acquire() for _ in range(3)]
        res.release()
        assert [w.triggered for w in waiters] == [True, False, False]
        res.release()
        assert [w.triggered for w in waiters] == [True, True, False]

    def test_release_idle_raises(self, engine):
        res = Resource(engine, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self, engine):
        with pytest.raises(SimulationError):
            Resource(engine, capacity=0)

    def test_serialization_timing(self, engine):
        """Two 1-second holds through a capacity-1 resource take 2 seconds."""
        res = Resource(engine, capacity=1)
        ends = []

        def worker():
            yield Wait(res.acquire())
            yield Timeout(1.0)
            res.release()
            ends.append(engine.now)

        engine.process(worker())
        engine.process(worker())
        engine.run()
        assert ends == [1.0, 2.0]


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)
        store.put("item")
        ev = store.get()
        assert ev.triggered and ev.value == "item"

    def test_get_then_put_wakes_getter(self, engine):
        store = Store(engine)
        ev = store.get()
        assert not ev.triggered
        store.put(5)
        assert ev.value == 5

    def test_fifo_item_order(self, engine):
        store = Store(engine)
        for i in range(3):
            store.put(i)
        assert [store.get().value for _ in range(3)] == [0, 1, 2]

    def test_fifo_getter_order(self, engine):
        store = Store(engine)
        getters = [store.get() for _ in range(2)]
        store.put("a")
        store.put("b")
        assert [g.value for g in getters] == ["a", "b"]

    def test_len_counts_items(self, engine):
        store = Store(engine)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestBarrier:
    def test_releases_after_all_parties(self, engine):
        barrier = Barrier(engine, parties=3, duration_fn=lambda a: 1.0)
        releases = []

        def party(delay):
            yield Timeout(delay)
            yield Wait(barrier.arrive())
            releases.append(engine.now)

        for d in (0.0, 1.0, 2.0):
            engine.process(party(d))
        engine.run()
        # Last arrival at t=2, +1.0 duration: everyone releases at 3.0.
        assert releases == [3.0, 3.0, 3.0]

    def test_duration_fn_sees_arrivals(self, engine):
        seen = {}

        def duration(arrivals):
            seen["arrivals"] = sorted(arrivals)
            return 0.5

        barrier = Barrier(engine, parties=2, duration_fn=duration)

        def party(delay):
            yield Timeout(delay)
            yield Wait(barrier.arrive())

        engine.process(party(1.0))
        engine.process(party(4.0))
        engine.run()
        assert seen["arrivals"] == [1.0, 4.0]
        assert barrier.completions[0]["skew"] == pytest.approx(3.0)

    def test_barrier_reuses_across_generations(self, engine):
        barrier = Barrier(engine, parties=2, duration_fn=lambda a: 1.0)
        ends = []

        def party():
            yield Wait(barrier.arrive())
            ends.append(engine.now)
            yield Wait(barrier.arrive())
            ends.append(engine.now)

        engine.process(party())
        engine.process(party())
        engine.run()
        assert ends == [1.0, 1.0, 2.0, 2.0]
        assert len(barrier.completions) == 2

    def test_negative_duration_raises(self, engine):
        barrier = Barrier(engine, parties=1, duration_fn=lambda a: -1.0)

        def party():
            yield Wait(barrier.arrive())

        engine.process(party())
        with pytest.raises(SimulationError):
            engine.run()

    def test_single_party_barrier_releases_immediately(self, engine):
        barrier = Barrier(engine, parties=1, duration_fn=lambda a: 0.25)
        ev = barrier.arrive()
        assert not ev.triggered  # release is scheduled, not synchronous
        engine.run()
        assert ev.triggered
        assert engine.now == pytest.approx(0.25)

    def test_invalid_parties_rejected(self, engine):
        with pytest.raises(SimulationError):
            Barrier(engine, parties=0)
