"""Unit tests for the trace recorder."""

import pytest

from repro.simcore.trace import Span, TraceRecorder


class TestSpan:
    def test_duration(self):
        span = Span(rank=0, kind="compute", label="forward", start=1.0, end=3.5)
        assert span.duration == pytest.approx(2.5)


class TestTraceRecorder:
    def test_record_and_query_by_label(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        trace.record(1, "compute", "forward", 0.0, 2.0)
        trace.record(0, "compute", "backward", 1.0, 3.0)
        assert len(trace.by_label("forward")) == 2
        assert len(trace.by_label("backward")) == 1

    def test_by_rank(self):
        trace = TraceRecorder()
        trace.record(3, "p2p", "send:act", 0.0, 0.5)
        trace.record(4, "p2p", "send:act", 0.0, 0.5)
        assert [s.rank for s in trace.by_rank(3)] == [3]

    def test_total_and_mean_time(self):
        trace = TraceRecorder()
        trace.record(0, "collective", "dp-sync", 0.0, 2.0)
        trace.record(1, "collective", "dp-sync", 0.0, 4.0)
        assert trace.total_time("dp-sync") == pytest.approx(6.0)
        assert trace.mean_time("dp-sync") == pytest.approx(3.0)
        assert trace.mean_time("missing") == 0.0

    def test_total_time_filtered_by_rank(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        trace.record(1, "compute", "forward", 0.0, 5.0)
        assert trace.total_time("forward", rank=1) == pytest.approx(5.0)

    def test_busy_fraction(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 3.0)
        trace.record(0, "idle", "bubble", 3.0, 10.0)
        assert trace.busy_fraction(0, horizon=10.0) == pytest.approx(0.3)
        assert trace.busy_fraction(0, horizon=0.0) == 0.0

    def test_disabled_recorder_drops_spans(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, "compute", "forward", 0.0, 1.0)
        assert trace.spans == []

    def test_negative_span_rejected(self):
        trace = TraceRecorder()
        with pytest.raises(ValueError):
            trace.record(0, "compute", "forward", 2.0, 1.0)

    def test_summary_aggregates(self):
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 1.0)
        trace.record(0, "compute", "forward", 1.0, 3.0)
        summary = trace.summary()
        assert summary["forward"]["count"] == 2
        assert summary["forward"]["total"] == pytest.approx(3.0)
        assert summary["forward"]["mean"] == pytest.approx(1.5)

    def test_zero_duration_span_allowed(self):
        trace = TraceRecorder()
        trace.record(-1, "fault", "inject:nic-flap", 1.0, 1.0)
        [span] = trace.spans
        assert span.duration == 0.0
        assert trace.summary()["inject:nic-flap"]["mean"] == 0.0

    def test_overlapping_spans_sum_independently(self):
        # the recorder keeps raw spans; overlap resolution is the
        # attribution layer's job, so totals may exceed wall time
        trace = TraceRecorder()
        trace.record(0, "compute", "forward", 0.0, 4.0)
        trace.record(0, "p2p", "send:x", 2.0, 6.0)
        assert trace.total_time("forward") == pytest.approx(4.0)
        assert trace.total_time("send:x") == pytest.approx(4.0)
        assert trace.busy_fraction(0, horizon=6.0) == 1.0  # clamped

    def test_meta_kwargs_stored_sorted(self):
        trace = TraceRecorder()
        trace.record(0, "nic", "nic-tx:x", 0.0, 1.0, 128, family="roce", dst=3)
        [span] = trace.spans
        assert span.meta == (("dst", 3), ("family", "roce"))
        assert span.bytes == 128
