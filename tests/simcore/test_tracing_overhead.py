"""A disabled TraceRecorder must be a true no-op on the hot path.

Every hot call site (the engine's rank processes, ``p2p.send``/``recv``)
guards on a precomputed ``tracing`` bool before building label f-strings or
meta kwargs, so a run with ``trace_enabled=False`` performs *zero*
``record`` calls — checked structurally below — and the only residual cost
is the guard evaluations themselves, micro-benchmarked at well under 5% of
a simulated iteration.
"""

import time

import pytest

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import hybrid2_env
from repro.core.engine import TrainingSimulation
from repro.core.scheduler import HolmesScheduler
from repro.simcore.trace import TraceRecorder

GROUP = PARAM_GROUPS[1]


def _plan():
    topology = hybrid2_env(2)
    return HolmesScheduler().plan(
        topology, GROUP.parallel_for(topology.world_size), GROUP.model
    )


def _min_wall(fn, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledRecorderIsNoop:
    def test_disabled_run_never_calls_record(self, monkeypatch):
        calls = []
        original = TraceRecorder.record

        def counting(self, *args, **kwargs):
            calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TraceRecorder, "record", counting)
        plan = _plan()
        TrainingSimulation(plan, GROUP.model, trace_enabled=False).run()
        assert calls == [], "disabled tracing must skip every record call"
        TrainingSimulation(plan, GROUP.model, trace_enabled=True).run()
        assert calls, "sanity: enabled tracing does record"

    def test_disabled_run_skips_attribution(self):
        result = TrainingSimulation(
            _plan(), GROUP.model, trace_enabled=False
        ).run()
        assert result.trace.spans == []
        assert result.attribution is None

    def test_virtual_time_identical_with_and_without_tracing(self):
        plan = _plan()
        on = TrainingSimulation(plan, GROUP.model, trace_enabled=True).run()
        off = TrainingSimulation(plan, GROUP.model, trace_enabled=False).run()
        assert off.iteration_time == pytest.approx(on.iteration_time, abs=1e-12)
        assert off.metrics.tflops_per_gpu == pytest.approx(
            on.metrics.tflops_per_gpu
        )


class TestTracingOverheadBudget:
    def test_disabled_guard_overhead_under_5_percent(self, monkeypatch):
        """The per-iteration cost of the disabled-tracing guards is <5%.

        Counts how many ``record`` calls a traced iteration performs, then
        times that many guard evaluations (``trace is not None and
        trace.enabled`` — exactly what the hot call sites do when tracing
        is off) against the wall time of an untraced iteration.  Min-of-N
        on both sides keeps the comparison stable on noisy CI machines.
        """
        plan = _plan()

        calls = [0]
        original = TraceRecorder.record

        def counting(self, *args, **kwargs):
            calls[0] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(TraceRecorder, "record", counting)
        TrainingSimulation(plan, GROUP.model, trace_enabled=True).run()
        monkeypatch.undo()
        num_guards = calls[0]
        assert num_guards > 1000, "expected a busy traced iteration"

        iteration_wall = _min_wall(
            lambda: TrainingSimulation(
                plan, GROUP.model, trace_enabled=False
            ).run()
        )

        disabled = TraceRecorder(enabled=False)

        def guards():
            sink = False
            for _ in range(num_guards):
                sink = disabled is not None and disabled.enabled
            return sink

        guard_wall = _min_wall(guards, rounds=5)
        overhead = guard_wall / iteration_wall
        assert overhead < 0.05, (
            f"disabled-tracing guards cost {overhead:.1%} of an iteration "
            f"({num_guards} guards, {guard_wall * 1e3:.2f}ms vs "
            f"{iteration_wall * 1e3:.2f}ms)"
        )
