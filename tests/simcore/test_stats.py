"""Unit and property tests for the streaming statistics helpers."""


import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.simcore.stats import Histogram, RunningStats

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty_stats(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0
        assert stats.minimum == stats.maximum == 5.0

    def test_matches_numpy(self):
        values = [1.5, 2.5, -3.0, 4.25, 0.0, 7.75]
        stats = RunningStats().extend(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values, ddof=1))
        assert stats.stddev == pytest.approx(np.std(values, ddof=1))

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_property_matches_numpy(self, values):
        stats = RunningStats().extend(values)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
        assert stats.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-6
        )
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @given(
        st.lists(finite_floats, min_size=1, max_size=100),
        st.lists(finite_floats, min_size=1, max_size=100),
    )
    def test_property_merge_equals_combined(self, a, b):
        merged = RunningStats().extend(a).merge(RunningStats().extend(b))
        combined = RunningStats().extend(a + b)
        assert merged.count == combined.count
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-9)
        assert merged.variance == pytest.approx(
            combined.variance, rel=1e-6, abs=1e-6
        )

    def test_merge_with_empty(self):
        stats = RunningStats().extend([1.0, 2.0])
        stats.merge(RunningStats())
        assert stats.count == 2
        empty = RunningStats()
        empty.merge(RunningStats().extend([3.0]))
        assert empty.count == 1
        assert empty.mean == 3.0


class TestHistogram:
    def test_basic_binning(self):
        hist = Histogram(0.0, 10.0, bins=10)
        for v in (0.5, 1.5, 1.6, 9.9):
            hist.add(v)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1

    def test_under_and_overflow(self):
        hist = Histogram(0.0, 1.0, bins=2)
        hist.add(-0.1)
        hist.add(1.0)  # right edge is exclusive
        hist.add(5.0)
        assert hist.underflow == 1
        assert hist.overflow == 2
        assert hist.total == 3

    def test_quantile_midpoint(self):
        hist = Histogram(0.0, 10.0, bins=10)
        for v in range(10):
            hist.add(v + 0.5)
        assert hist.quantile(0.5) == pytest.approx(4.5, abs=1.0)
        assert hist.quantile(0.0) <= hist.quantile(1.0)

    def test_quantile_empty_returns_low(self):
        assert Histogram(2.0, 3.0, bins=4).quantile(0.5) == 2.0

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, bins=2)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=2).quantile(1.5)

    def test_bin_edges(self):
        edges = Histogram(0.0, 1.0, bins=4).bin_edges()
        assert edges == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])
