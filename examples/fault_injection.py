#!/usr/bin/env python
"""In-simulation fault injection: watch an iteration degrade gracefully.

Injects faults *into* the discrete-event simulation mid-iteration — an RDMA
NIC flap (traffic falls back to TCP/Ethernet and pays a communicator
rebuild), packet loss (bounded retries with exponential backoff), a link
bandwidth brownout, a straggler, and a node crash (the iteration aborts
after crash detection instead of deadlocking).  Then runs a seeded elastic
campaign under per-node churn and checks the realised goodput against the
first-order analytic prediction.

Faulted runs are ordinary :class:`repro.api.Scenario` values — the fault
plan is part of the scenario's identity, so a faulted run replays (and
caches) byte-identically like any other.

Run:  python examples/fault_injection.py
"""

import dataclasses

from repro.api import Scenario, simulate
from repro.bench.tables import format_table
from repro.core.faults import CheckpointPolicy
from repro.core.longrun import (
    ElasticPolicy,
    elastic_goodput_analytic,
    simulate_elastic_campaign,
)
from repro.faults import FaultEvent, FaultKind

# Two clusters of two nodes each, so data-parallel groups span nodes
# *within* a cluster (over RDMA) and the pipeline crosses clusters.
BASE = Scenario(
    env="hybrid", nodes=4, gpus_per_node=2,
    num_layers=8, hidden_size=1024, num_attention_heads=8,
    seq_length=512, vocab_size=8192,
    tensor=1, pipeline=2, micro_batch_size=2, global_batch_size=32,
    label="fault-demo",
)


def main() -> None:
    healthy = simulate(BASE)
    print(f"Healthy iteration: {healthy.metrics}\n")

    scenarios = [
        (
            "RDMA NIC flap (node 0)",
            FaultEvent(time=0.005, kind=FaultKind.NIC_FLAP, node=0,
                       duration=300.0),
        ),
        (
            "10% packet loss (node 0)",
            FaultEvent(time=0.0, kind=FaultKind.PACKET_LOSS, node=0,
                       loss_rate=0.10),
        ),
        (
            "link brownout to 25% (node 0)",
            FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADE, node=0,
                       factor=0.25),
        ),
        (
            "straggler rank 0 (2x slower)",
            FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=0,
                       factor=2.0),
        ),
        (
            "node 1 crash mid-iteration",
            FaultEvent(time=0.01, kind=FaultKind.NODE_CRASH, node=1),
        ),
    ]

    rows = []
    for label, event in scenarios:
        faulted = dataclasses.replace(BASE, fault_events=(event,))
        result = simulate(faulted)
        replay = simulate(faulted)
        assert result.iteration_time == replay.iteration_time, "not deterministic!"
        report = result.faults
        rows.append([
            label,
            f"{result.iteration_time:.3f}s",
            f"{result.iteration_time / healthy.iteration_time:.2f}x",
            f"{report.retry_time:.3f}s",
            report.rebuild_count,
            len(report.fallback_pairs) + len(report.fallback_groups),
            "yes" if result.aborted else "no",
        ])
    print("Degraded iterations (all seeded runs replay byte-identically):")
    print(format_table(
        ["Fault", "iter", "slowdown", "retry", "rebuilds", "fallbacks",
         "aborted"],
        rows,
    ))

    # A seeded random plan: churn you can replay and bisect.  The seed,
    # event count, and horizon live on the Scenario, so the plan is part
    # of its digest.
    churned = dataclasses.replace(
        BASE, fault_seed=7, fault_count=4,
        fault_horizon=healthy.iteration_time,
    )
    print(f"\n{churned.fault_plan(churned.topology()).describe()}")
    result = simulate(churned)
    print(f"under that plan: {result.metrics}")

    # Long-run elastic campaign: per-node MTBF, correlated cluster outages,
    # degraded throughput while repairs are pending.
    topology = BASE.topology()
    policy = ElasticPolicy(
        num_nodes=topology.num_nodes,
        node_mtbf=150_000.0,
        repair_time=900.0,
        reconfig_time=60.0,
        correlated_outage_prob=0.2,
        cluster_size=2,
    )
    ckpt = CheckpointPolicy(
        checkpoint_time=20.0,
        restart_time=policy.reconfig_time + policy.repair_time,
        mtbf=policy.node_mtbf / policy.num_nodes,
    )
    horizon = 2_000_000.0
    campaign = simulate_elastic_campaign(
        policy, ckpt, healthy.iteration_time, horizon, seed=11
    )
    analytic = elastic_goodput_analytic(policy, ckpt)
    print(f"\nElastic campaign over {horizon / 86400:.0f} simulated days:")
    print(f"  goodput:   {campaign.goodput:.1%}  "
          f"(analytic first-order: {analytic:.1%})")
    print(f"  failures:  {campaign.num_failures}  "
          f"(min alive {campaign.min_alive}/{policy.num_nodes})")
    print(f"  breakdown: checkpoints {campaign.checkpoint_time:.0f}s, "
          f"rollback {campaign.lost_time:.0f}s, "
          f"reconfig {campaign.reconfig_time:.0f}s, "
          f"degraded-running {campaign.degraded_time:.0f}s")


if __name__ == "__main__":
    main()
