#!/usr/bin/env python
"""Framework shoot-out in a heterogeneous NIC environment (paper Figure 6).

Runs Holmes against Megatron-LM, Megatron-DeepSpeed, and Megatron-LLaMA on
the same machine — 8 nodes, half RoCE, half InfiniBand, Ethernet between the
clusters — plus the Table 5 ablation that attributes Holmes's win to its
components.  Each cell is a :class:`repro.api.Scenario` differing only in
its ``framework`` preset, and the whole grid runs through one
:func:`repro.api.sweep` call.

Run:  python examples/framework_comparison.py
"""

import dataclasses

from repro.api import Scenario, sweep
from repro.bench.tables import format_table
from repro.frameworks import FRAMEWORKS


def main() -> None:
    base = Scenario.from_group("hybrid", 8, 3)  # 7.5B GPT
    print(f"{base.model.describe()} on 8 nodes (4 RoCE + 4 IB)\n")

    frameworks = sorted(FRAMEWORKS)
    results = sweep(
        [dataclasses.replace(base, framework=name) for name in frameworks]
    )
    rows = [
        [name, round(r.tflops), round(r.throughput, 2),
         f"{r.dp_rdma_fraction * 100:.0f}%"]
        for name, r in zip(frameworks, results)
    ]
    rows.sort(key=lambda r: -r[1])
    print("Framework comparison:")
    print(format_table(["Framework", "TFLOPS", "samples/s", "DP on RDMA"], rows))
    print(
        "\nHolmes is the only NIC-aware framework: the baselines cannot"
        "\nnegotiate mixed RDMA and fall back to TCP over Ethernet for all"
        "\ninter-node traffic.  Megatron-LLaMA recovers part of the loss by"
        "\noverlapping gradient communication with backward compute."
    )

    # Table 5's ablation: which Holmes component buys what.
    variants = [
        ("full Holmes", "holmes-full"),
        ("w/o Self-Adapting Partition", "holmes-no-sap"),
        ("w/o Overlapped Optimizer", "holmes-no-overlap"),
        ("w/o both", "holmes-base"),
    ]
    results = sweep(
        [dataclasses.replace(base, framework=preset) for _, preset in variants]
    )
    rows = [
        [label, round(r.tflops), round(r.throughput, 2)]
        for (label, _), r in zip(variants, results)
    ]
    print("\nComponent ablation (all variants keep Cross-Cluster Pipeline")
    print("Parallelism and Automatic NIC Selection):")
    print(format_table(["Variant", "TFLOPS", "samples/s"], rows))


if __name__ == "__main__":
    main()
