#!/usr/bin/env python
"""Framework shoot-out in a heterogeneous NIC environment (paper Figure 6).

Runs Holmes against Megatron-LM, Megatron-DeepSpeed, and Megatron-LLaMA on
the same machine — 8 nodes, half RoCE, half InfiniBand, Ethernet between the
clusters — plus the Table 5 ablation that attributes Holmes's win to its
components.

Run:  python examples/framework_comparison.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import run_framework_case
from repro.bench.scenarios import hybrid2_env
from repro.bench.tables import format_table
from repro.frameworks import FRAMEWORKS
from repro.frameworks.holmes import holmes_ablation


def main() -> None:
    group = PARAM_GROUPS[3]  # 7.5B GPT
    topology = hybrid2_env(8)

    print(f"{group.model.describe()} on 8 nodes (4 RoCE + 4 IB)\n")

    rows = []
    for name, spec in FRAMEWORKS.items():
        result = run_framework_case(spec, topology, group, scenario="hybrid")
        rows.append(
            [name, round(result.tflops), round(result.throughput, 2),
             f"{result.dp_rdma_fraction * 100:.0f}%"]
        )
    rows.sort(key=lambda r: -r[1])
    print("Framework comparison:")
    print(format_table(["Framework", "TFLOPS", "samples/s", "DP on RDMA"], rows))
    print(
        "\nHolmes is the only NIC-aware framework: the baselines cannot"
        "\nnegotiate mixed RDMA and fall back to TCP over Ethernet for all"
        "\ninter-node traffic.  Megatron-LLaMA recovers part of the loss by"
        "\noverlapping gradient communication with backward compute."
    )

    # Table 5's ablation: which Holmes component buys what.
    variants = {
        "full Holmes": holmes_ablation(),
        "w/o Self-Adapting Partition": holmes_ablation(
            self_adapting_partition=False
        ),
        "w/o Overlapped Optimizer": holmes_ablation(overlapped_optimizer=False),
        "w/o both": holmes_ablation(False, False),
    }
    rows = []
    for label, spec in variants.items():
        result = run_framework_case(spec, topology, group, scenario="hybrid")
        rows.append([label, round(result.tflops), round(result.throughput, 2)])
    print("\nComponent ablation (all variants keep Cross-Cluster Pipeline")
    print("Parallelism and Automatic NIC Selection):")
    print(format_table(["Variant", "TFLOPS", "samples/s"], rows))


if __name__ == "__main__":
    main()
