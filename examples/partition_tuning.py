#!/usr/bin/env python
"""Self-Adapting Pipeline Partition tuning (paper Eq. 2, Figure 5).

Sweeps the alpha hyper-parameter and hand-picked layer splits for a 7.5B
GPT across a RoCE + InfiniBand hybrid, showing how the Eq. 2 partition
rebalances the pipeline: the RoCE-connected stage computes each microbatch
more slowly (communication interference), so it should carry fewer layers.

Run:  python examples/partition_tuning.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import hybrid2_env
from repro.bench.tables import format_table
from repro.core.engine import TrainingSimulation
from repro.core.optimizer import STRATEGIES
from repro.core.partition import self_adapting_partition, stage_speed_from_drag
from repro.core.scheduler import HolmesScheduler


def run_with_partition(topology, group, stage_layers):
    """Simulate one iteration with an explicit layer split."""
    from dataclasses import replace

    parallel = group.parallel_for(topology.world_size)
    plan = HolmesScheduler().plan(
        topology, parallel, group.model, partition_strategy="uniform"
    )
    plan = replace(plan, stage_layers=tuple(stage_layers))
    sim = TrainingSimulation(
        plan, group.model, optimizer=STRATEGIES["overlapped"],
        trace_enabled=False,
    )
    return sim.run()


def main() -> None:
    group = PARAM_GROUPS[3]  # 7.5B GPT, 36 layers, p=2
    topology = hybrid2_env(8)
    layers = group.model.num_layers

    print(f"{group.model.describe()} on 8 nodes "
          f"(4 RoCE + 4 InfiniBand), pipeline degree 2\n")

    # 1. Hand sweep of layer splits (stage 0 = RoCE cluster).
    rows = []
    for roce_layers in range(13, 22):
        split = [roce_layers, layers - roce_layers]
        result = run_with_partition(topology, group, split)
        rows.append(
            [f"{split[0]} / {split[1]}", round(result.tflops, 1),
             round(result.throughput, 2)]
        )
    print("Layer split sweep (RoCE stage / IB stage):")
    print(format_table(["Split", "TFLOPS", "samples/s"], rows))

    # 2. What Eq. 2 picks at different alphas.
    roce_speed = stage_speed_from_drag(0.18)  # calibrated RoCE drag
    ib_speed = stage_speed_from_drag(0.0)
    rows = []
    for alpha in (0.95, 1.00, 1.05, 1.10, 1.20):
        split = self_adapting_partition(layers, [roce_speed, ib_speed], alpha)
        result = run_with_partition(topology, group, split)
        rows.append(
            [alpha, f"{split[0]} / {split[1]}", round(result.tflops, 1)]
        )
    print("\nEq. 2 partitions by alpha (paper uses 1.05):")
    print(format_table(["alpha", "Split", "TFLOPS"], rows))

    uniform = run_with_partition(topology, group, [18, 18])
    print(f"\nUniform split (18/18) reference: {uniform.tflops:.1f} TFLOPS")


if __name__ == "__main__":
    main()
