#!/usr/bin/env python
"""Run the simulator as a service — the wire API in five minutes.

A capacity-planning team does not want every engineer running their own
simulator: results should come from one daemon with one warm cache, so a
scenario anyone has asked about before answers instantly for everyone.
This example boots the serve daemon in-process (real sockets, same code
path as ``repro serve``), drives it with :class:`repro.client.ServeClient`
as two tenants, and shows the contract that makes the service safe to
adopt: the served result is byte-identical to a local ``repro.api.run``,
and the second tenant's sweep is answered almost entirely from the cache
the first tenant warmed.

Run:  python examples/serve_quickstart.py
"""

import json
import tempfile

from repro.api import Scenario, run
from repro.client import ServeClient
from repro.serve import ServeConfig, start_in_process


def fast_scenario(env: str, num_microbatches: int = 2) -> Scenario:
    """A deliberately small cell so the example runs in seconds."""
    return Scenario.from_group(
        env, 2, 1, tensor=1, pipeline=1, data=0, global_batch_size=0,
        num_microbatches=num_microbatches, trace_enabled=False,
        fidelity="auto",
    )


def main() -> None:
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-")
    config = ServeConfig(port=0, cache_dir=cache_dir, workers=1)
    with start_in_process(config) as daemon:
        print(f"daemon listening on {daemon.url} (cache {cache_dir})\n")

        # -- tenant 'alice': one served run, checked against local ---- #
        alice = ServeClient(daemon.url, tenant="alice")
        scenario = fast_scenario("ib")
        served = alice.run_document(scenario)
        local = run(scenario).to_document()
        identical = (json.dumps(served, sort_keys=True)
                     == json.dumps(local, sort_keys=True))
        result = alice.run(scenario)
        print(f"alice: served {scenario.label}: {result.tflops:.1f} "
              f"TFLOPS/GPU, iteration {result.iteration_time:.3f} s")
        print(f"alice: served document byte-identical to local run: "
              f"{identical}\n")

        # -- alice sweeps a small NIC-environment grid ----------------- #
        grid = [fast_scenario(env) for env in ("ib", "roce", "ethernet")]
        job = alice.submit_sweep(grid)
        done = alice.wait(str(job["id"]), timeout=300)
        print(f"alice: sweep {done['id']} {done['state']}: "
              f"stats {done['stats']}")

        # -- tenant 'bob' asks the same questions: warm-cache answers -- #
        bob = ServeClient(daemon.url, tenant="bob")
        outcome = bob.sweep(grid, timeout=300)
        hits = outcome.stats.get("cache_hits", 0)
        print(f"bob:   same sweep: {hits}/{len(grid)} cells answered "
              f"from alice's warm cache")
        for scenario, cell in zip(grid, outcome.results):
            print(f"bob:     {scenario.env:<9} {cell.tflops:6.1f} TFLOPS/GPU")

        # -- what the operators see ------------------------------------ #
        health = bob.healthz()
        print(f"\nhealth: jobs={health['jobs']} "
              f"queued={health['queue_depth']} active={health['active_jobs']}")
        hit_rate = next(
            line for line in bob.metrics().splitlines()
            if line.startswith("serve_cache_hit_rate")
        )
        print(f"metrics: {hit_rate}")
    print("\ndaemon drained cleanly; a 'serve' run is in the ledger at")
    print(f"  {cache_dir}/ledger.jsonl")


if __name__ == "__main__":
    main()
