#!/usr/bin/env python
"""Full-stack telemetry for one iteration: healthy, then under faults.

Walks the `repro.obs` pipeline end to end on the hybrid two-cluster
machine: simulate a traced iteration, print the critical-path time-loss
budget (where every second of the makespan went, summing exactly to the
iteration time), name the slowest p2p edges and busiest NICs, dump a few
Prometheus-format metric lines — then inject a 3x straggler plus a link
brownout and show the budget shift to point straight at the culprits.

Writes profile_report.json (schema-validated) and profile_trace.json
(open in https://ui.perfetto.dev: rank rows, p2p flow arrows, fault
markers, utilization counter tracks).

Run:  python examples/profile_iteration.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import hybrid2_env
from repro.core.engine import TrainingSimulation
from repro.core.scheduler import HolmesScheduler
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.obs.attribution import Category
from repro.obs.report import build_report, render_report, validate_report
from repro.obs.timeline import nic_utilization, utilization_counter_events
from repro.simcore.chrome_trace import default_rank_names, export_chrome_trace


def simulate(fault_plan=None):
    group = PARAM_GROUPS[1]
    topology = hybrid2_env(2)
    plan = HolmesScheduler().plan(
        topology, group.parallel_for(topology.world_size), group.model
    )
    return TrainingSimulation(plan, group.model, fault_plan=fault_plan).run()


def main() -> None:
    print("=" * 72)
    print("1. Healthy iteration: the time-loss budget")
    print("=" * 72)
    healthy = simulate()
    report = build_report(
        healthy, scenario={"env": "hybrid", "nodes": 2, "group": 1}
    )
    validate_report(report)
    print(render_report(report))

    budget = healthy.attribution.budget
    total = sum(budget.values())
    print(f"\ncompleteness check: budget sums to {total:.9f}s "
          f"vs iteration {healthy.iteration_time:.9f}s "
          f"(diff {abs(total - healthy.iteration_time):.2e}s)")

    print("\na few Prometheus-format series from the registry:")
    for line in healthy.registry.to_prometheus().splitlines():
        if line.startswith(("sim_", "attribution_seconds")):
            print(f"  {line}")

    print()
    print("=" * 72)
    print("2. The same machine with a 3x straggler and a link brownout")
    print("=" * 72)
    fault_plan = FaultPlan(events=(
        FaultEvent(time=0.0, kind=FaultKind.STRAGGLER, rank=0, factor=3.0),
        FaultEvent(time=1.0, kind=FaultKind.LINK_DEGRADE, node=0,
                   factor=0.25, duration=5.0),
    ))
    faulted = simulate(fault_plan=fault_plan)
    faulted_report = build_report(
        faulted, scenario={"env": "hybrid", "nodes": 2, "faulted": True}
    )
    validate_report(faulted_report)
    print(render_report(faulted_report))

    print("\nbudget shift (healthy -> faulted):")
    for category in Category:
        before = healthy.attribution.budget.get(category, 0.0)
        after = faulted.attribution.budget.get(category, 0.0)
        if before or after:
            print(f"  {str(category):16s} {before:8.3f}s -> {after:8.3f}s")
    print(f"\nthe straggler owns "
          f"{faulted.attribution.fraction(Category.STRAGGLER):.0%} of the "
          f"iteration; metrics now read: {faulted.metrics}")

    print()
    print("=" * 72)
    print("3. Artifacts")
    print("=" * 72)
    import json

    with open("profile_report.json", "w") as fh:
        json.dump(faulted_report, fh, indent=2)
    counters = utilization_counter_events(
        nic_utilization(faulted.trace, faulted.makespan), prefix="nic"
    )
    with open("profile_trace.json", "w") as fh:
        export_chrome_trace(
            faulted.trace, fh,
            rank_names=default_rank_names(faulted.plan),
            extra_events=counters,
        )
    print("wrote profile_report.json (validated, schema "
          f"{faulted_report['schema']})")
    print("wrote profile_trace.json — open in https://ui.perfetto.dev and "
          "look for the fault markers and the NIC utilization dip")


if __name__ == "__main__":
    main()
