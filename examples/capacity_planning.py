#!/usr/bin/env python
"""Capacity planning with the auto-parallelism planner.

You are handed two clusters — 2 RoCE nodes and 2 InfiniBand nodes, Ethernet
between them — and a 7.5B-parameter GPT to train.  Which (tensor, pipeline,
data) sharding should you use?  The planner enumerates every feasible
configuration, rejects those that would not fit in 80 GB of GPU memory or
would straddle cluster boundaries, simulates the rest, and ranks them.

This implements the paper's stated future work ("explore scheduling methods
for diverse environments").

Run:  python examples/capacity_planning.py
"""

from repro.bench.scenarios import hybrid2_env
from repro.bench.tables import format_table
from repro.core.planner import enumerate_configs, evaluate_candidates
from repro.model.config import GPTConfig


def main() -> None:
    topology = hybrid2_env(4)
    model = GPTConfig(num_layers=36, hidden_size=4096, num_attention_heads=32)
    batch = 1536

    print(f"Machine:\n{topology.describe()}\n")
    print(f"Model: {model.describe()},  global batch {batch}\n")

    configs = list(enumerate_configs(topology, model, batch))
    print(f"{len(configs)} feasible (t, p, d) combinations enumerated")

    candidates = evaluate_candidates(topology, model, configs)
    print(f"{len(candidates)} survive memory and cluster-alignment checks\n")

    rows = []
    for c in candidates[:8]:
        rows.append(
            [
                f"t={c.parallel.tensor} p={c.parallel.pipeline} "
                f"d={c.parallel.data}",
                "/".join(str(n) for n in c.stage_layers),
                round(c.tflops, 1),
                round(c.throughput, 2),
                f"{c.memory_utilization * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["Config", "Stage layers", "TFLOPS", "samples/s", "GPU mem"],
            rows,
        )
    )

    best = candidates[0]
    print(
        f"\nPlanner's pick: t={best.parallel.tensor}, "
        f"p={best.parallel.pipeline}, d={best.parallel.data} — "
        f"pipeline across the Ethernet gap, data parallelism on RDMA, "
        f"layers split {list(best.stage_layers)} by Eq. 2."
    )


if __name__ == "__main__":
    main()
