#!/usr/bin/env python
"""Cross-cluster training study (the paper's Case 2, Figure 4).

You have two GPU clusters in different buildings — both with fast RDMA
inside, but only ordinary Ethernet between them.  Can you train one model
across both without rebuilding the network?  This example sweeps the
paper's scenarios and shows Holmes's answer: put *pipeline* parallelism on
the slow inter-cluster link (it moves megabytes of activations) and keep
*data* parallelism on the fast intra-cluster RDMA (it moves gigabytes of
gradients).

Run:  python examples/cross_cluster_training.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import run_holmes_case
from repro.bench.scenarios import (
    ethernet_env,
    homogeneous_env,
    hybrid2_env,
    split_env,
)
from repro.bench.tables import format_table
from repro.hardware.nic import NICType


def main() -> None:
    group = PARAM_GROUPS[3]  # 7.5B GPT
    nodes = 4

    scenarios = {
        "InfiniBand (one cluster, upper bound)": homogeneous_env(
            nodes, NICType.INFINIBAND
        ),
        "RoCE (one cluster)": homogeneous_env(nodes, NICType.ROCE),
        "IB + IB across Ethernet": split_env(nodes, NICType.INFINIBAND),
        "RoCE + RoCE across Ethernet": split_env(nodes, NICType.ROCE),
        "RoCE + IB across Ethernet (hybrid)": hybrid2_env(nodes),
        "Ethernet only (lower bound)": ethernet_env(nodes),
    }

    rows = []
    for label, topology in scenarios.items():
        result = run_holmes_case(topology, group, scenario=label)
        rows.append(
            [
                label,
                round(result.tflops),
                round(result.throughput, 2),
                f"{result.dp_rdma_fraction * 100:.0f}%",
                f"{result.reduce_scatter_time * 1000:.0f}ms",
            ]
        )

    print(f"Cross-cluster training, {group.model.describe()}, "
          f"{nodes} nodes x 8 A100s\n")
    print(
        format_table(
            ["Scenario", "TFLOPS", "samples/s", "DP on RDMA", "reduce-scatter"],
            rows,
        )
    )
    print(
        "\nReading the table: the split scenarios (two clusters joined only"
        "\nby Ethernet) land within a few percent of their single-cluster"
        "\nupper bounds, far above Ethernet-only — because Holmes keeps every"
        "\ngradient reduce-scatter on RDMA and sends only activations across"
        "\nthe slow link."
    )


if __name__ == "__main__":
    main()
