#!/usr/bin/env python
"""Network economics: where do the bytes go, and what is an upgrade worth?

Two analyses on the hybrid machine:

1. **Traffic accounting** — exact per-iteration byte counts by link class,
   showing *why* Holmes works: the gigabytes of gradient sync ride RDMA,
   while only megabytes-per-microbatch of activations cross the
   inter-cluster Ethernet.
2. **Upgrade advisor** — simulate swapping each cluster's NICs for faster
   ones and rank the procurement options by throughput gained.

Run:  python examples/network_economics.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import ethernet_env, hybrid2_env
from repro.bench.tables import format_table
from repro.core.advisor import advise_upgrades
from repro.core.scheduler import HolmesScheduler
from repro.core.traffic import iteration_traffic
from repro.units import GB


def main() -> None:
    group = PARAM_GROUPS[3]
    topo = hybrid2_env(4)
    plan = HolmesScheduler().plan(
        topo, group.parallel_for(topo.world_size), group.model
    )

    report = iteration_traffic(plan, group.model)
    print(f"Per-iteration traffic, {group.model.describe()}, "
          f"hybrid 4 nodes:\n")
    rows = [[k, f"{v / GB:8.2f} GB"] for k, v in report.by_type.items()]
    print(format_table(["Traffic type", "volume"], rows))
    rows = [[k, f"{v / GB:8.2f} GB"] for k, v in report.by_link.items()]
    print()
    print(format_table(["Link class", "volume"], rows))
    print(
        f"\n{report.fraction_on_rdma() * 100:.1f}% of NIC-crossing bytes "
        f"ride RDMA under Holmes's placement; only the pipeline's "
        f"{report.by_link['uplink'] / GB:.2f} GB crosses the inter-cluster "
        f"Ethernet."
    )

    print("\nUpgrade advisor (hybrid machine):")
    for option in advise_upgrades(topo, group):
        print(f"  {option.describe()}")

    print("\nUpgrade advisor (pure-Ethernet machine — the expensive case")
    print("the paper's framework exists to avoid):")
    for option in advise_upgrades(ethernet_env(4), group):
        print(f"  {option.describe()}")


if __name__ == "__main__":
    main()
