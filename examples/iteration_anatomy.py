#!/usr/bin/env python
"""Anatomy of one training iteration: where does the time go?

Dissects a simulated 7.5B-GPT iteration in three environments using the
trace-analysis module: per-stage compute / communication / idle breakdown,
realised pipeline bubble vs the analytic (p-1)/m, and the collective-
algorithm crossover table the fabric would use for gradient buffers of
different sizes.

Run:  python examples/iteration_anatomy.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import ethernet_env, homogeneous_env, hybrid2_env
from repro.bench.tables import format_table
from repro.collectives.selection import selection_table
from repro.core.analysis import analyze
from repro.core.scheduler import HolmesScheduler
from repro.core.engine import TrainingSimulation
from repro.core.optimizer import STRATEGIES
from repro.hardware.nic import NICType
from repro.network.fabric import Fabric
from repro.schedule.pipeline import bubble_fraction


def run_traced(topology, group):
    parallel = group.parallel_for(topology.world_size)
    plan = HolmesScheduler().plan(topology, parallel, group.model)
    result = TrainingSimulation(
        plan, group.model, optimizer=STRATEGIES["overlapped"],
        trace_enabled=True,
    ).run()
    return result, parallel


def main() -> None:
    group = PARAM_GROUPS[3]

    print("Per-environment time breakdown (mean seconds per rank):\n")
    rows = []
    for label, topo in (
        ("InfiniBand", homogeneous_env(4, NICType.INFINIBAND)),
        ("Hybrid", hybrid2_env(4)),
        ("Ethernet", ethernet_env(4)),
    ):
        result, parallel = run_traced(topo, group)
        analysis = analyze(result)
        for stage, summary in analysis.stage_summary().items():
            rows.append(
                [
                    label, stage,
                    round(summary["compute"], 2),
                    round(summary["p2p"], 3),
                    round(summary["collective"], 2),
                    round(summary["idle"], 2),
                    f"{summary['utilization'] * 100:.0f}%",
                ]
            )
        analytic = bubble_fraction(parallel.pipeline, parallel.num_microbatches)
        print(
            f"  {label:11s} iter={result.iteration_time:6.2f}s  "
            f"bubble={analysis.bubble_fraction * 100:4.1f}% "
            f"(analytic {(analytic) * 100:.1f}%)  "
            f"comm exposure={analysis.comm_exposure * 100:4.1f}%"
        )
    print()
    print(
        format_table(
            ["Env", "Stage", "compute", "p2p", "collective", "idle", "util"],
            rows,
        )
    )

    print("\nAll-reduce algorithm crossover (32 IB ranks, what the fabric")
    print("would pick per gradient-buffer size):")
    fabric = Fabric(homogeneous_env(4, NICType.INFINIBAND))
    rows = []
    for choice in selection_table(fabric, list(range(32))):
        rows.append(
            [
                ", ".join(f"{k}={v * 1000:.2f}ms" for k, v in
                          sorted(choice.costs.items())),
                choice.algorithm,
            ]
        )
    for size, row in zip(("1KiB", "64KiB", "4MiB", "256MiB", "4GiB"), rows):
        print(f"  {size:>7}: winner={row[1]:<13} ({row[0]})")


if __name__ == "__main__":
    main()
