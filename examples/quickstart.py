#!/usr/bin/env python
"""Quickstart: simulate one Holmes training iteration in 30 lines.

Builds the paper's headline scenario — a 3.6B-parameter GPT trained across
two GPU clusters (one RoCE, one InfiniBand) joined only by Ethernet — and
prints the metrics the paper reports (TFLOPS per GPU, samples/second),
plus where every byte of communication went.

Run:  python examples/quickstart.py
"""

from repro import quick_simulate
from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.scenarios import hybrid2_env


def main() -> None:
    # 4 nodes x 8 A100s: two 2-node clusters (RoCE + InfiniBand),
    # no high-speed interconnect between them (the paper's Case 2).
    topology = hybrid2_env(num_nodes=4)
    print(topology.describe())

    # Parameter group 1 from the paper's Table 2: 3.6B GPT,
    # tensor parallel 1, pipeline parallel 2, global batch 768.
    group = PARAM_GROUPS[1]
    print(f"\nModel: {group.model.describe()}")

    result = quick_simulate(topology, group, full=True)

    print(f"\n{result.metrics}")
    print(f"\nPipeline stages got layers: {list(result.plan.stage_layers)}")
    print(f"Stage sync NICs: {[n.value for n in result.plan.stage_nics]}")
    print(
        f"Data-parallel groups on RDMA: "
        f"{result.audit.dp_rdma_fraction * 100:.0f}%"
    )
    for stage, times in enumerate(result.sync_times):
        parts = ", ".join(f"{k}={v * 1000:.0f}ms" for k, v in times.items())
        print(f"  stage {stage} gradient sync: {parts}")


if __name__ == "__main__":
    main()
