#!/usr/bin/env python
"""Quickstart: simulate one Holmes training iteration in 30 lines.

Builds the paper's headline scenario — a 3.6B-parameter GPT trained across
two GPU clusters (one RoCE, one InfiniBand) joined only by Ethernet — and
prints the metrics the paper reports (TFLOPS per GPU, samples/second),
plus where every byte of communication went.

Everything goes through :mod:`repro.api`: describe the experiment as a
frozen :class:`~repro.api.Scenario`, then :func:`~repro.api.run` it for a
compact summary or :func:`~repro.api.simulate` it for the full
event-by-event result.

Run:  python examples/quickstart.py
"""

from repro.api import Scenario, run, simulate


def main() -> None:
    # 4 nodes x 8 A100s: two 2-node clusters (RoCE + InfiniBand),
    # no high-speed interconnect between them (the paper's Case 2).
    # Parameter group 1 from the paper's Table 2: 3.6B GPT,
    # tensor parallel 1, pipeline parallel 2, global batch 768.
    scenario = Scenario.from_group("hybrid", 4, 1, framework="holmes-full")
    print(scenario.topology().describe())
    print(f"\nModel: {scenario.model.describe()}")

    # run() gives the cacheable summary row; every run with the same
    # Scenario digest reproduces it byte-for-byte.
    summary = run(scenario)
    print(f"\nTFLOPS/GPU: {summary.tflops:.1f}   "
          f"throughput: {summary.throughput:.2f} samples/s   "
          f"(scenario {summary.scenario_digest[:12]})")

    # simulate() keeps the full IterationResult for inspection.
    result = simulate(scenario)
    print(f"\n{result.metrics}")
    print(f"\nPipeline stages got layers: {list(result.plan.stage_layers)}")
    print(f"Stage sync NICs: {[n.value for n in result.plan.stage_nics]}")
    print(
        f"Data-parallel groups on RDMA: "
        f"{result.audit.dp_rdma_fraction * 100:.0f}%"
    )
    for stage, times in enumerate(result.sync_times):
        parts = ", ".join(f"{k}={v * 1000:.0f}ms" for k, v in times.items())
        print(f"  stage {stage} gradient sync: {parts}")


if __name__ == "__main__":
    main()
