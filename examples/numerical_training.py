#!/usr/bin/env python
"""End-to-end *numerical* parallel training — no timing simulation here,
real numbers: the paper's "partial training to validate our approach".

Pipeline: synthetic corpus → trainable BPE tokenizer → token dataset with
Megatron-style data-parallel sharding → a NumPy GPT trained by the
data-parallel trainer, whose gradient synchronisation runs through this
library's actual ring all-reduce.  A pipeline-split run of the same model
verifies stage-wise execution gives identical losses.

Run:  python examples/numerical_training.py
"""

import numpy as np

from repro.data.corpus import SyntheticCorpus
from repro.data.dataset import DataParallelSampler, TokenDataset
from repro.data.tokenizer import BPETokenizer
from repro.nn.model import TinyGPTConfig
from repro.nn.parallel_train import (
    DataParallelTrainer,
    PipelineParallelTrainer,
    SingleTrainer,
)


def main() -> None:
    # 1. Data: generate a corpus and learn a BPE vocabulary on it.
    corpus = SyntheticCorpus(vocab_words=30, seed=3)
    text = corpus.generate(6000)
    tokenizer = BPETokenizer().train(text, vocab_size=96)
    tokens = tokenizer.encode(text)
    print(f"corpus: {len(text.split())} words -> {len(tokens)} BPE tokens "
          f"(vocab {tokenizer.vocab_size})")

    # 2. Dataset with data-parallel sharding (2 replicas x 4 samples).
    config = TinyGPTConfig(vocab_size=tokenizer.vocab_size, seq_length=16,
                           hidden_size=16, num_heads=4, num_blocks=2)
    dataset = TokenDataset(tokens, seq_length=config.seq_length)
    world = 2
    sampler = DataParallelSampler(dataset, data_parallel=world,
                                  batch_per_replica=4, seed=0)
    print(f"dataset: {len(dataset)} samples, "
          f"{sampler.batches_per_epoch} steps/epoch/replica pair")

    # 3. Data-parallel training over the library's ring all-reduce.
    trainer = DataParallelTrainer(config, world=world, seed=0, lr=3e-3)
    uniform = float(np.log(config.vocab_size))
    print(f"\nuniform baseline loss: {uniform:.3f}")
    step = 0
    for epoch in range(3):
        for batch_step in range(sampler.batches_per_epoch):
            shards = [
                sampler.replica_batch(r, epoch, batch_step)
                for r in range(world)
            ]
            tokens_in = np.concatenate([s[0] for s in shards])
            targets = np.concatenate([s[1] for s in shards])
            loss = trainer.step(tokens_in, targets)
            if step % 20 == 0:
                print(f"  epoch {epoch} step {step:3d}  loss {loss:.3f}")
            step += 1
    print(f"final loss: {loss:.3f}  "
          f"({loss / uniform * 100:.0f}% of uniform — the model learned "
          f"the corpus's Markov structure)")
    assert trainer.replicas_in_sync()

    # 4. Pipeline-split execution of the same model: identical numerics.
    single = SingleTrainer(config, seed=42, lr=3e-3)
    pipeline = PipelineParallelTrainer(config, [1, 1], seed=42, lr=3e-3)
    inputs, targets = sampler.replica_batch(0, epoch=0, step=0)
    loss_single = single.step(inputs, targets)
    loss_pipe = pipeline.step(inputs, targets)
    print(f"\npipeline-vs-single loss on one step: "
          f"{loss_pipe:.10f} vs {loss_single:.10f} "
          f"(diff {abs(loss_pipe - loss_single):.2e})")
    act = pipeline.last_boundary_traffic[0]
    print(f"activation crossing the stage boundary: shape {act.shape}, "
          f"{act.nbytes} bytes — the payload the timing simulator prices.")


if __name__ == "__main__":
    main()
