#!/usr/bin/env python
"""Node-scaling study: how far does each environment scale?

Sweeps the 7.5B GPT from 4 to 12 nodes in four NIC environments, reporting
per-GPU TFLOPS, aggregate throughput, and scaling efficiency (1.0 = perfect
linear).  The paper's Table 3 shape — communication's share grows with
scale, so per-GPU TFLOPS falls while throughput rises — plus the punchline:
the hybrid environment scales almost as well as homogeneous RDMA, far
better than Ethernet.

Run:  python examples/scaling_study.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.runner import HOLMES_FULL
from repro.bench.scenarios import ethernet_env, homogeneous_env, hybrid2_env
from repro.bench.sweep import (
    node_scaling_points,
    scaling_efficiency,
    sweep_machines,
)
from repro.bench.tables import format_table
from repro.hardware.nic import NICType

NODE_COUNTS = (4, 6, 8, 12)


def main() -> None:
    group = PARAM_GROUPS[3]
    print(f"Scaling {group.model.describe()}, global batch "
          f"{group.global_batch_size}\n")

    environments = {
        "InfiniBand": lambda n: homogeneous_env(n, NICType.INFINIBAND),
        "RoCE": lambda n: homogeneous_env(n, NICType.ROCE),
        "Hybrid": hybrid2_env,
        "Ethernet": ethernet_env,
    }

    rows = []
    efficiency_at_12 = {}
    for env_name, make_env in environments.items():
        points = node_scaling_points(make_env, NODE_COUNTS)
        results = sweep_machines(HOLMES_FULL, points, group)
        efficiencies = scaling_efficiency(results)
        efficiency_at_12[env_name] = efficiencies[-1]
        for result, eff in zip(results, efficiencies):
            rows.append(
                [
                    env_name,
                    result.num_gpus,
                    round(result.tflops),
                    round(result.throughput, 2),
                    f"{eff * 100:.0f}%",
                ]
            )

    print(
        format_table(
            ["Env", "GPUs", "TFLOPS/GPU", "samples/s", "scaling eff"], rows
        )
    )
    print(
        "\nScaling efficiency at 12 nodes (vs 4): "
        + ", ".join(f"{k} {v * 100:.0f}%" for k, v in efficiency_at_12.items())
    )
    print(
        "\nThe hybrid machine keeps most of the RDMA environments'"
        "\nscaling efficiency — the pure-Ethernet cluster pays the full"
        "\ngradient-sync cost at every scale."
    )


if __name__ == "__main__":
    main()
