#!/usr/bin/env python
"""Node-scaling study: how far does each environment scale?

Sweeps the 7.5B GPT from 4 to 12 nodes in four NIC environments, reporting
per-GPU TFLOPS, aggregate throughput, and scaling efficiency (1.0 = perfect
linear).  The paper's Table 3 shape — communication's share grows with
scale, so per-GPU TFLOPS falls while throughput rises — plus the punchline:
the hybrid environment scales almost as well as homogeneous RDMA, far
better than Ethernet.

The sixteen cells are :class:`repro.api.Scenario` values run through the
batch executor; pass ``jobs=4`` (or a :class:`repro.exec.ResultCache`) to
:func:`repro.bench.sweep.sweep_scenarios` and the numbers do not change.

Run:  python examples/scaling_study.py
"""

from repro.bench.paramgroups import PARAM_GROUPS
from repro.bench.sweep import (
    node_scaling_scenarios,
    scaling_efficiency,
    sweep_scenarios,
)
from repro.bench.tables import format_table

NODE_COUNTS = (4, 6, 8, 12)
ENVIRONMENTS = ("InfiniBand", "RoCE", "Hybrid", "Ethernet")


def main() -> None:
    group = PARAM_GROUPS[3]
    print(f"Scaling {group.model.describe()}, global batch "
          f"{group.global_batch_size}\n")

    rows = []
    efficiency_at_12 = {}
    for env_name in ENVIRONMENTS:
        scenarios = node_scaling_scenarios(
            env_name, NODE_COUNTS, group, full=True
        )
        results = sweep_scenarios(scenarios)
        efficiencies = scaling_efficiency(results)
        efficiency_at_12[env_name] = efficiencies[-1]
        for result, eff in zip(results, efficiencies):
            rows.append(
                [
                    env_name,
                    result.world_size,
                    round(result.tflops),
                    round(result.throughput, 2),
                    f"{eff * 100:.0f}%",
                ]
            )

    print(
        format_table(
            ["Env", "GPUs", "TFLOPS/GPU", "samples/s", "scaling eff"], rows
        )
    )
    print(
        "\nScaling efficiency at 12 nodes (vs 4): "
        + ", ".join(f"{k} {v * 100:.0f}%" for k, v in efficiency_at_12.items())
    )
    print(
        "\nThe hybrid machine keeps most of the RDMA environments'"
        "\nscaling efficiency — the pure-Ethernet cluster pays the full"
        "\ngradient-sync cost at every scale."
    )


if __name__ == "__main__":
    main()
