#!/usr/bin/env python
"""Fault handling study (the paper's second future-work item).

Simulates a node failure in a two-cluster training job: replan on the
survivors, compare degraded throughput, and price a checkpointing policy
(Young/Daly interval) so the healthy-machine TFLOPS can be converted into
sustained *effective* TFLOPS under realistic churn.

Run:  python examples/fault_recovery.py
"""

from repro.bench.scenarios import hybrid2_env
from repro.bench.tables import format_table
from repro.core.faults import (
    CheckpointPolicy,
    replan_after_failure,
    surviving_topology,
)
from repro.core.planner import plan_best
from repro.model.config import GPTConfig

HOURS = 3600.0


def main() -> None:
    topology = hybrid2_env(4)
    model = GPTConfig(num_layers=36, hidden_size=4096, num_attention_heads=32)
    batch = 1536

    healthy = plan_best(topology, model, batch, top_k=1)[0]
    print(f"Healthy machine ({topology.world_size} GPUs):")
    print(f"  {healthy.describe()}\n")

    # Fail one node in each cluster in turn and replan.
    rows = []
    for failed, label in [
        ([0], "one RoCE node down"),
        ([2], "one IB node down"),
        ([0, 2], "one node down per cluster"),
    ]:
        survivors = surviving_topology(topology, failed)
        best = replan_after_failure(topology, failed, model, batch)[0]
        rows.append(
            [
                label,
                survivors.world_size,
                f"t={best.parallel.tensor} p={best.parallel.pipeline} "
                f"d={best.parallel.data}",
                round(best.throughput, 2),
                f"{best.throughput / healthy.throughput * 100:.0f}%",
            ]
        )
    print("Degraded replans after node failures:")
    print(
        format_table(
            ["Failure", "GPUs", "New config", "samples/s", "of healthy"],
            rows,
        )
    )

    # Checkpoint policy: how much throughput survives churn?
    print("\nCheckpointing (50 s checkpoints, 5 min restart):")
    rows = []
    for mtbf_hours in (4, 12, 24, 72):
        policy = CheckpointPolicy(
            checkpoint_time=50.0, restart_time=300.0, mtbf=mtbf_hours * HOURS
        )
        rows.append(
            [
                f"{mtbf_hours}h",
                f"{policy.optimal_interval / 60:.0f} min",
                f"{policy.goodput_fraction() * 100:.1f}%",
                round(policy.effective_tflops(healthy.tflops), 1),
            ]
        )
    print(
        format_table(
            ["MTBF", "ckpt interval", "goodput", "effective TFLOPS"], rows
        )
    )


if __name__ == "__main__":
    main()
