"""Setuptools shim so ``pip install -e .`` works without the ``wheel``
package (offline environments fall back to the legacy editable install)."""

from setuptools import setup

setup()
